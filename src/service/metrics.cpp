#include "service/metrics.hpp"

#include <algorithm>

namespace ptecps::service {

namespace {

/// Nearest-rank percentile over an unsorted copy; 0 when empty.
double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

}  // namespace

util::Json ServiceMetrics::to_json(std::size_t queue_depth, std::size_t queue_capacity,
                                   std::size_t workers, bool draining,
                                   const util::Json* cache_stats) const {
  std::vector<double> window;
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    window = latencies_;
  }
  const double uptime = uptime_seconds();
  const std::uint64_t done = completed();

  util::Json out = util::Json::object();
  out.set("uptime_seconds", uptime);
  out.set("draining", draining);
  out.set("workers", workers);

  util::Json jobs = util::Json::object();
  jobs.set("admitted", admitted_.load(std::memory_order_relaxed));
  jobs.set("completed", done);
  jobs.set("failed", failed_.load(std::memory_order_relaxed));
  jobs.set("rejected_queue_full", rejected_full_.load(std::memory_order_relaxed));
  jobs.set("rejected_draining", rejected_draining_.load(std::memory_order_relaxed));
  jobs.set("protocol_errors", protocol_errors_.load(std::memory_order_relaxed));
  jobs.set("per_second", uptime > 0.0 ? static_cast<double>(done) / uptime : 0.0);
  out.set("jobs", std::move(jobs));

  util::Json latency = util::Json::object();
  latency.set("window", window.size());
  latency.set("p50_ms", percentile(window, 50.0));
  latency.set("p95_ms", percentile(window, 95.0));
  latency.set("max_ms", window.empty() ? 0.0 : *std::max_element(window.begin(), window.end()));
  out.set("latency_ms", std::move(latency));

  util::Json queue = util::Json::object();
  queue.set("depth", queue_depth);
  queue.set("capacity", queue_capacity);
  out.set("queue", std::move(queue));

  util::Json conn = util::Json::object();
  conn.set("accepted", connections_.load(std::memory_order_relaxed));
  conn.set("http_requests", http_requests_.load(std::memory_order_relaxed));
  out.set("connections", std::move(conn));

  const std::uint64_t hits = cache_hits_.load(std::memory_order_relaxed);
  const std::uint64_t misses = cache_misses_.load(std::memory_order_relaxed);
  util::Json cache = util::Json::object();
  cache.set("enabled", cache_stats != nullptr);
  cache.set("hits", hits);
  cache.set("misses", misses);
  cache.set("resumes", cache_resumes_.load(std::memory_order_relaxed));
  cache.set("hit_rate",
            hits + misses > 0
                ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                : 0.0);
  if (cache_stats != nullptr) cache.set("store", *cache_stats);
  out.set("cache", std::move(cache));
  return out;
}

}  // namespace ptecps::service
