// Operational counters for the verification daemon, served at /metrics.
//
// Counters are lock-free atomics on the hot path; latency percentiles
// come from a fixed-size ring of the most recent completions (a bounded
// window is the honest choice for a long-running daemon — an all-time
// percentile goes stale, a window tracks the current regime).  The
// snapshot is one JSON object so `curl /metrics | jq` is the whole
// monitoring story.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "api/job.hpp"
#include "util/json.hpp"

namespace ptecps::service {

class ServiceMetrics {
 public:
  /// How many recent job latencies feed p50/p95.
  static constexpr std::size_t kLatencyWindow = 4096;

  ServiceMetrics() : start_(std::chrono::steady_clock::now()) {
    latencies_.reserve(kLatencyWindow);
  }

  void record_admitted() { admitted_.fetch_add(1, std::memory_order_relaxed); }
  void record_rejected_full() { rejected_full_.fetch_add(1, std::memory_order_relaxed); }
  void record_rejected_draining() {
    rejected_draining_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_protocol_error() {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_connection() { connections_.fetch_add(1, std::memory_order_relaxed); }
  void record_http_request() { http_requests_.fetch_add(1, std::memory_order_relaxed); }

  /// One finished job: end-to-end wall and its cache accounting.
  void record_completed(double wall_ms, const api::JobResult& result) {
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (!result.ok) failed_.fetch_add(1, std::memory_order_relaxed);
    cache_hits_.fetch_add(result.cache.hits, std::memory_order_relaxed);
    cache_misses_.fetch_add(result.cache.misses, std::memory_order_relaxed);
    cache_resumes_.fetch_add(result.cache.resumes, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(latency_mu_);
    if (latencies_.size() < kLatencyWindow) {
      latencies_.push_back(wall_ms);
    } else {
      latencies_[latency_cursor_ % kLatencyWindow] = wall_ms;
    }
    ++latency_cursor_;
  }

  double uptime_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
        .count();
  }
  std::uint64_t completed() const { return completed_.load(std::memory_order_relaxed); }
  std::uint64_t admitted() const { return admitted_.load(std::memory_order_relaxed); }
  std::uint64_t rejected() const {
    return rejected_full_.load(std::memory_order_relaxed) +
           rejected_draining_.load(std::memory_order_relaxed);
  }

  /// The /metrics document.  Queue and cache state live elsewhere, so the
  /// server passes them in; `cache_stats` may be null (caching off).
  util::Json to_json(std::size_t queue_depth, std::size_t queue_capacity,
                     std::size_t workers, bool draining,
                     const util::Json* cache_stats) const;

 private:
  const std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> rejected_full_{0};
  std::atomic<std::uint64_t> rejected_draining_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> http_requests_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> cache_resumes_{0};

  mutable std::mutex latency_mu_;
  std::vector<double> latencies_;
  std::size_t latency_cursor_ = 0;
};

}  // namespace ptecps::service
