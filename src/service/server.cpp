#include "service/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <list>
#include <mutex>
#include <thread>
#include <vector>

#include "service/queue.hpp"
#include "util/sockio.hpp"
#include "util/text.hpp"

namespace ptecps::service {

using util::Json;
using util::Socket;

namespace {

using steady_clock = std::chrono::steady_clock;

double ms_since(steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(steady_clock::now() - t0).count();
}

/// What one request handling produced; the two transports render it
/// differently (frame payload vs HTTP status + body).
struct Response {
  enum class Kind { kOk, kRejected, kBadRequest };
  Kind kind = Kind::kOk;
  Json body = Json::object();
};

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions opts)
      : options(std::move(opts)),
        svc(options.service),
        queue(options.queue_depth),
        worker_count(options.workers > 0
                         ? options.workers
                         : std::max<std::size_t>(1, std::thread::hardware_concurrency())) {}

  ServerOptions options;
  api::Service svc;
  AdmissionQueue queue;
  ServiceMetrics metrics;
  std::size_t worker_count;

  Socket listener;
  int listen_port = -1;
  int wake_pipe[2] = {-1, -1};

  std::thread acceptor;
  std::vector<std::thread> workers;
  std::thread gc_thread;

  /// Connections are list nodes so references stay stable; a finished
  /// handler marks `done` and the acceptor reaps it on the next accept.
  struct Conn {
    Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  std::mutex conn_mu;
  std::list<Conn> conns;

  std::atomic<bool> draining{false};
  std::mutex gc_mu;
  std::condition_variable gc_cv;
  bool gc_stop = false;

  std::once_flag drain_once;

  ~Impl() {
    for (int fd : wake_pipe)
      if (fd >= 0) ::close(fd);
  }

  // --- policy --------------------------------------------------------------

  /// Server-side defaults and caps applied to every admitted job: the
  /// state-budget ceiling, and thread counts of 1 unless the job pins
  /// its own (the pool parallelizes across jobs; per-job hardware
  /// concurrency on top would oversubscribe `workers`-fold).
  void apply_job_policy(api::Job& job) const {
    if (options.max_states_cap > 0 && (job.tuning.max_states == 0 ||
                                       job.tuning.max_states > options.max_states_cap))
      job.tuning.max_states = options.max_states_cap;
    if (job.tuning.threads == 0) job.tuning.threads = options.job_verify_threads;
    if (job.threads == 0) job.threads = options.job_mc_threads;
  }

  // --- request handling (transport-independent) ----------------------------

  Response handle_request(const std::string& payload) {
    Response resp;
    std::string id;
    try {
      const Json req = Json::parse(payload);
      const Json* job_json = &req;
      int priority = kPriorityNormal;
      if (const Json* inner = req.find("job")) {
        // Envelope form: {"job": {...}, "priority"?: 0|1|2, "id"?: "..."}.
        job_json = inner;
        if (const Json* p = req.find("priority")) {
          const std::int64_t level = p->as_int();
          if (level < 0 || level >= kPriorityLevels)
            throw util::JsonError(util::cat("request: priority ", level,
                                            " out of range [0, ", kPriorityLevels - 1,
                                            "]"));
          priority = static_cast<int>(level);
        }
        if (const Json* i = req.find("id")) id = i->as_string();
      }
      api::Job job = api::Job::from_json(*job_json);
      apply_job_policy(job);

      QueuedJob queued;
      queued.job = std::move(job);
      queued.priority = priority;
      queued.id = id;
      queued.enqueued_at = steady_clock::now();
      std::future<api::JobResult> future = queued.promise.get_future();
      switch (queue.push(std::move(queued))) {
        case AdmitStatus::kAdmitted: {
          metrics.record_admitted();
          api::JobResult result = future.get();
          resp.kind = Response::Kind::kOk;
          resp.body.set("ok", result.ok);
          if (!id.empty()) resp.body.set("id", id);
          resp.body.set("result", result.to_json());
          return resp;
        }
        case AdmitStatus::kQueueFull:
          metrics.record_rejected_full();
          resp.kind = Response::Kind::kRejected;
          resp.body.set("ok", false);
          if (!id.empty()) resp.body.set("id", id);
          resp.body.set("rejected", true);
          resp.body.set("error", util::cat("queue full (capacity ", queue.capacity(),
                                           "); retry later"));
          return resp;
        case AdmitStatus::kDraining:
          metrics.record_rejected_draining();
          resp.kind = Response::Kind::kRejected;
          resp.body.set("ok", false);
          if (!id.empty()) resp.body.set("id", id);
          resp.body.set("rejected", true);
          resp.body.set("error", "draining: the server is shutting down");
          return resp;
      }
      return resp;  // unreachable
    } catch (const std::exception& e) {
      metrics.record_protocol_error();
      resp.kind = Response::Kind::kBadRequest;
      resp.body = Json::object();
      resp.body.set("ok", false);
      if (!id.empty()) resp.body.set("id", id);
      resp.body.set("error", e.what());
      return resp;
    }
  }

  Json metrics_doc() const {
    Json cache_stats;
    const Json* stats_ptr = nullptr;
    if (svc.cache() != nullptr) {
      cache_stats = svc.cache()->stats().to_json();
      stats_ptr = &cache_stats;
    }
    return metrics.to_json(queue.depth(), queue.capacity(), worker_count,
                           draining.load(), stats_ptr);
  }

  // --- transports ----------------------------------------------------------

  void serve_framed(Socket& sock) {
    while (true) {
      const std::optional<std::string> payload = util::read_frame(sock);
      if (!payload.has_value()) return;  // clean hang-up
      const Response resp = handle_request(*payload);
      util::write_frame(sock, resp.body.dump_canonical());
    }
  }

  void serve_http(Socket& sock, std::string prefix) {
    const std::optional<util::HttpRequest> req =
        util::read_http_request(sock, std::move(prefix));
    if (!req.has_value()) return;
    metrics.record_http_request();
    if (req->method == "GET" && req->target == "/healthz") {
      if (draining.load())
        util::write_http_response(sock, 503, "Service Unavailable", "text/plain",
                                  "draining\n");
      else
        util::write_http_response(sock, 200, "OK", "text/plain", "ok\n");
      return;
    }
    if (req->method == "GET" && req->target == "/metrics") {
      util::write_http_response(sock, 200, "OK", "application/json",
                                metrics_doc().dump(2) + "\n");
      return;
    }
    if (req->method == "POST" && req->target == "/run") {
      const Response resp = handle_request(req->body);
      const std::string body = resp.body.dump(2) + "\n";
      switch (resp.kind) {
        case Response::Kind::kOk:
          util::write_http_response(sock, 200, "OK", "application/json", body);
          return;
        case Response::Kind::kRejected:
          util::write_http_response(sock, 503, "Service Unavailable",
                                    "application/json", body);
          return;
        case Response::Kind::kBadRequest:
          util::write_http_response(sock, 400, "Bad Request", "application/json", body);
          return;
      }
      return;
    }
    util::write_http_response(sock, 404, "Not Found", "text/plain",
                              "unknown endpoint (try /healthz, /metrics, POST /run)\n");
  }

  void serve_connection(Conn& conn) {
    try {
      // Protocol sniff: the framed protocol opens with "PTEJ", anything
      // else is handed to the HTTP parser with the bytes replayed.
      char magic[4];
      std::size_t got = 0;
      while (got < sizeof magic) {
        const std::size_t n = conn.sock.read_some(magic + got, sizeof magic - got);
        if (n == 0) break;
        got += n;
      }
      if (got == sizeof magic &&
          std::memcmp(magic, util::kFrameMagic, sizeof magic) == 0) {
        serve_framed(conn.sock);
      } else if (got > 0) {
        serve_http(conn.sock, std::string(magic, got));
      }
    } catch (const std::exception&) {
      // Torn frame, malformed HTTP, or a peer that vanished mid-write:
      // the connection dies, the server does not.
      metrics.record_protocol_error();
    }
    // Half-close the write side now, not at reap time: an HTTP client
    // reading to EOF (the Connection: close contract) must see it as
    // soon as we are done.  The fd itself stays owned until reap, so
    // drain's concurrent shutdown_read never races a close/fd-reuse.
    conn.sock.shutdown_write();
    conn.done.store(true);
  }

  // --- threads -------------------------------------------------------------

  void worker_loop() {
    while (std::optional<QueuedJob> queued = queue.pop()) {
      api::JobResult result = svc.run(queued->job);
      metrics.record_completed(ms_since(queued->enqueued_at), result);
      queued->promise.set_value(std::move(result));
    }
  }

  void accept_loop() {
    while (!draining.load()) {
      pollfd fds[2] = {{listener.fd(), POLLIN, 0}, {wake_pipe[0], POLLIN, 0}};
      if (::poll(fds, 2, -1) < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if ((fds[1].revents & POLLIN) != 0 || draining.load()) break;
      if ((fds[0].revents & POLLIN) == 0) continue;
      const int fd = ::accept(listener.fd(), nullptr, nullptr);
      if (fd < 0) continue;
      // A wedged client must not wedge drain: bounded send, then error.
      timeval send_timeout{60, 0};
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &send_timeout, sizeof send_timeout);
      // Request/response over small frames: Nagle + delayed ACK would
      // pin every cache-hit response at ~40 ms.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

      std::lock_guard<std::mutex> lock(conn_mu);
      // Reap finished connections (join is immediate once done is set).
      for (auto it = conns.begin(); it != conns.end();) {
        if (it->done.load() && it->thread.joinable()) {
          it->thread.join();
          it = conns.erase(it);
        } else {
          ++it;
        }
      }
      if (conns.size() >= options.max_connections) {
        ::close(fd);  // explicit overload shed, not a hang
        continue;
      }
      metrics.record_connection();
      conns.emplace_back();
      Conn& conn = conns.back();
      conn.sock = Socket(fd);
      conn.thread = std::thread([this, &conn] { serve_connection(conn); });
    }
    listener.close();
  }

  void gc_loop() {
    const auto period = std::chrono::duration<double>(options.gc_interval_s);
    std::unique_lock<std::mutex> lock(gc_mu);
    while (!gc_stop) {
      gc_cv.wait_for(lock, period);
      if (gc_stop) break;
      lock.unlock();
      if (svc.cache() != nullptr) svc.cache()->gc();
      lock.lock();
    }
  }

  void do_start() {
    listener = util::tcp_listen(options.host, options.port);
    listen_port = util::bound_port(listener);
    if (::pipe(wake_pipe) != 0)
      throw std::runtime_error(util::cat("server: pipe(): ", std::strerror(errno)));
    workers.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i)
      workers.emplace_back([this] { worker_loop(); });
    acceptor = std::thread([this] { accept_loop(); });
    if (options.gc_interval_s > 0.0 && svc.cache() != nullptr)
      gc_thread = std::thread([this] { gc_loop(); });
  }

  /// The drain sequence; runs exactly once (drain()/wait() both funnel
  /// here through the once_flag).
  void do_drain() {
    draining.store(true);
    queue.drain();  // every not-yet-admitted job now gets an explicit reject
    if (wake_pipe[1] >= 0) {
      const char byte = 'x';
      [[maybe_unused]] const ssize_t n = ::write(wake_pipe[1], &byte, 1);
    }
    if (acceptor.joinable()) acceptor.join();
    // The connection list is stable now (only the acceptor mutated it).
    // Shut read sides: idle readers see EOF; a handler waiting on a job
    // result still writes its full response before exiting.
    {
      std::lock_guard<std::mutex> lock(conn_mu);
      for (Conn& conn : conns) conn.sock.shutdown_read();
    }
    for (Conn& conn : conns)
      if (conn.thread.joinable()) conn.thread.join();
    conns.clear();
    // Every owed response is on the wire; stop the pool and flush.
    queue.stop();
    for (std::thread& worker : workers) worker.join();
    {
      std::lock_guard<std::mutex> lock(gc_mu);
      gc_stop = true;
    }
    gc_cv.notify_all();
    if (gc_thread.joinable()) gc_thread.join();
    if (svc.cache() != nullptr) svc.cache()->gc();
  }
};

Server::Server(ServerOptions options) : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() {
  if (impl_ != nullptr && impl_->listen_port >= 0) drain();
}

void Server::start() { impl_->do_start(); }

int Server::port() const { return impl_->listen_port; }

void Server::drain() {
  std::call_once(impl_->drain_once, [this] { impl_->do_drain(); });
}

void Server::wait() { drain(); }

bool Server::draining() const { return impl_->draining.load(); }

Json Server::metrics_json() const { return impl_->metrics_doc(); }

const ServiceMetrics& Server::metrics() const { return impl_->metrics; }

const api::Service& Server::service() const { return impl_->svc; }

}  // namespace ptecps::service
