// Admission control for the verification daemon: a bounded, three-level
// priority queue of pending jobs.
//
// Admission is explicit — push() answers kAdmitted, kQueueFull, or
// kDraining, and a full queue REJECTS instead of blocking, so a client
// always gets a prompt answer and a burst can never wedge every
// connection thread behind an unbounded backlog.  Priorities exist so a
// stream of huge proofs cannot starve interactive requests: workers
// always take the highest non-empty level, FIFO within a level.
//
// Lifecycle: drain() flips the queue into reject-new mode (jobs already
// admitted still come out); stop() additionally wakes blocked poppers
// once the backlog is empty — pop() returning nullopt is the worker
// exit signal.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>

#include "api/job.hpp"

namespace ptecps::service {

inline constexpr int kPriorityLow = 0;
inline constexpr int kPriorityNormal = 1;
inline constexpr int kPriorityHigh = 2;
inline constexpr int kPriorityLevels = 3;

struct QueuedJob {
  api::Job job;
  int priority = kPriorityNormal;
  /// Client correlation id, echoed back verbatim in the response.
  std::string id;
  /// Admission time — latency metrics cover queue wait + execution.
  std::chrono::steady_clock::time_point enqueued_at;
  std::promise<api::JobResult> promise;
};

enum class AdmitStatus { kAdmitted, kQueueFull, kDraining };

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}

  AdmitStatus push(QueuedJob&& job) {
    const int level = std::clamp(job.priority, 0, kPriorityLevels - 1);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (draining_) return AdmitStatus::kDraining;
      if (size_ >= capacity_) return AdmitStatus::kQueueFull;
      levels_[level].push_back(std::move(job));
      ++size_;
    }
    cv_.notify_one();
    return AdmitStatus::kAdmitted;
  }

  /// Blocks until a job is available or stop() emptied the queue.
  std::optional<QueuedJob> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return size_ > 0 || stopping_; });
    if (size_ == 0) return std::nullopt;
    for (int level = kPriorityLevels - 1; level >= 0; --level) {
      if (levels_[level].empty()) continue;
      QueuedJob job = std::move(levels_[level].front());
      levels_[level].pop_front();
      --size_;
      return job;
    }
    return std::nullopt;  // unreachable: size_ > 0 implies a non-empty level
  }

  /// Reject every future push; already-admitted jobs still drain out.
  void drain() {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }

  /// Wake poppers for exit once the backlog is gone (implies drain()).
  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      draining_ = true;
      stopping_ = true;
    }
    cv_.notify_all();
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }
  std::size_t capacity() const { return capacity_; }
  bool draining() const {
    std::lock_guard<std::mutex> lock(mu_);
    return draining_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedJob> levels_[kPriorityLevels];
  std::size_t size_ = 0;
  bool draining_ = false;
  bool stopping_ = false;
};

}  // namespace ptecps::service
