// `pted`'s engine room: a TCP server running a bounded worker pool over
// the job API (api::Service), with admission control, priorities, a
// process-wide shared result cache, and graceful drain.
//
// One port speaks both wire formats — the first four bytes of a
// connection select them.  "PTEJ" opens the framed protocol
// (util/sockio.hpp): each request frame is JSON, either a bare api::Job
// or an envelope {"job": {...}, "priority": 0|1|2, "id": "..."}; each
// response frame is {"ok", "id"?, "rejected"?, "error"?, "result"?}.
// Anything else is treated as HTTP/1.1: POST /run takes the same JSON
// body, GET /healthz and GET /metrics serve operations.
//
// Threading model: one acceptor, one thread per connection handling one
// request at a time (concurrency = open connections, which the bench
// drives), and a fixed pool of `workers` threads executing jobs from the
// shared AdmissionQueue — so the queue, not the connection count, bounds
// the work in flight, and a burst beyond `queue_depth` gets explicit
// rejects instead of latency collapse.
//
// Drain (SIGTERM in `pted`, drain() here): stop accepting, reject every
// job not yet admitted, finish and answer everything in flight, flush
// the cache (final gc), then return from wait().  Responses are never
// truncated: a connection's read side is shut first, its write side only
// closes after the last owed response is on the wire.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "api/service.hpp"
#include "service/metrics.hpp"
#include "util/json.hpp"

namespace ptecps::service {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; port() tells what was bound.
  int port = 0;
  /// Job-executing worker threads (0 = hardware concurrency).
  std::size_t workers = 0;
  /// Admission queue capacity; pushes beyond it are rejected.
  std::size_t queue_depth = 64;
  /// Concurrent connections; accepts beyond it are closed immediately.
  std::size_t max_connections = 256;
  /// Server-side verify budget cap: jobs whose tuning pins no state
  /// budget (or pins one above the cap) run with max_states = cap, so a
  /// single huge proof cannot hold a worker forever.  0 = no cap.
  std::uint64_t max_states_cap = 0;
  /// Prover threads per job when the job pins none.  The pool already
  /// parallelizes across jobs, so the sane daemon default is 1 —
  /// `workers` x hardware-concurrency oversubscription is the trap.
  std::uint64_t job_verify_threads = 1;
  /// Same for a job's Monte-Carlo worker count.
  std::size_t job_mc_threads = 1;
  /// Cache configuration (api::ServiceOptions::cache_dir enables it).
  api::ServiceOptions service;
  /// Background cache gc period in seconds; <= 0 disables the thread.
  double gc_interval_s = 0.0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  /// Bind + listen + spawn acceptor, workers and (optionally) the gc
  /// thread.  Throws util::SockError / std::runtime_error on failure.
  void start();
  /// The bound port (valid after start()).
  int port() const;

  /// Initiate graceful drain; idempotent, callable from any thread.
  void drain();
  /// Block until a drain (triggered here or elsewhere) has fully
  /// completed and every thread is joined.
  void wait();
  bool draining() const;

  /// The /metrics document, as served.
  util::Json metrics_json() const;
  const ServiceMetrics& metrics() const;
  const api::Service& service() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ptecps::service
