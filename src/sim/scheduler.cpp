#include "sim/scheduler.hpp"

#include <utility>

#include "util/require.hpp"
#include "util/text.hpp"

namespace ptecps::sim {

EventHandle Scheduler::schedule_at(SimTime at, Callback cb) {
  PTE_REQUIRE(cb != nullptr, "null callback");
  PTE_REQUIRE(at >= now_ - kTimeEps,
              util::cat("scheduling into the past: at=", at, " now=", now_));
  // Clamp tiny negative drift so queue order stays consistent with now().
  if (at < now_) at = now_;
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return EventHandle{id};
}

EventHandle Scheduler::schedule_in(SimTime delay, Callback cb) {
  PTE_REQUIRE(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

bool Scheduler::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  const auto it = callbacks_.find(handle.id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(handle.id);
  return true;
}

void Scheduler::pop_cancelled() {
  while (!queue_.empty() && cancelled_.count(queue_.top().id) > 0) {
    cancelled_.erase(queue_.top().id);
    queue_.pop();
  }
}

bool Scheduler::empty() const {
  // Cheap check: pending_events walks nothing, it just compares sizes.
  return callbacks_.empty();
}

SimTime Scheduler::next_time() const {
  auto* self = const_cast<Scheduler*>(this);
  self->pop_cancelled();
  return queue_.empty() ? kSimTimeInfinity : queue_.top().at;
}

bool Scheduler::step() {
  pop_cancelled();
  if (queue_.empty()) return false;
  const Entry entry = queue_.top();
  queue_.pop();
  const auto it = callbacks_.find(entry.id);
  PTE_CHECK(it != callbacks_.end(), "live queue entry without callback");
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  PTE_CHECK(entry.at >= now_ - kTimeEps, "event queue went backwards in time");
  now_ = std::max(now_, entry.at);
  ++executed_;
  cb();
  return true;
}

void Scheduler::run_until(SimTime until) {
  PTE_REQUIRE(until >= now_ - kTimeEps, "run_until into the past");
  while (true) {
    pop_cancelled();
    if (queue_.empty() || queue_.top().at > until + kTimeEps) break;
    step();
  }
  now_ = std::max(now_, until);
}

void Scheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    PTE_CHECK(++n <= max_events, "scheduler exceeded max_events — runaway event chain?");
  }
}

std::uint64_t Scheduler::pending_events() const { return callbacks_.size(); }

}  // namespace ptecps::sim
