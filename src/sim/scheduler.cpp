#include "sim/scheduler.hpp"

#include <utility>

#include "util/require.hpp"
#include "util/text.hpp"

namespace ptecps::sim {

std::uint32_t Scheduler::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = kNoSlot;
    ++slots_[slot].gen;  // even -> odd: occupied
    return slot;
  }
  PTE_CHECK(slots_.size() < kNoSlot, "event slab exhausted");
  slots_.push_back(Slot{nullptr, 1, kNoSlot});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb = nullptr;
  ++s.gen;  // odd -> even: free; kills every outstanding handle
  s.next_free = free_head_;
  free_head_ = slot;
}

EventHandle Scheduler::schedule_at(SimTime at, Callback cb) {
  PTE_REQUIRE(cb != nullptr, "null callback");
  PTE_REQUIRE(at >= now_ - kTimeEps,
              util::cat("scheduling into the past: at=", at, " now=", now_));
  // Clamp tiny negative drift so queue order stays consistent with now().
  if (at < now_) at = now_;
  const std::uint32_t slot = acquire_slot();
  slots_[slot].cb = std::move(cb);
  const std::uint32_t gen = slots_[slot].gen;
  queue_.push(Entry{at, next_seq_++, slot, gen});
  ++live_;
  return EventHandle{slot, gen};
}

EventHandle Scheduler::schedule_in(SimTime delay, Callback cb) {
  PTE_REQUIRE(delay >= 0.0, "negative delay");
  return schedule_at(now_ + delay, std::move(cb));
}

bool Scheduler::cancel(EventHandle handle) {
  if (!handle.valid()) return false;
  if (handle.slot >= slots_.size()) return false;
  if (slots_[handle.slot].gen != handle.gen) return false;  // ran / cancelled / reused
  release_slot(handle.slot);
  --live_;
  return true;
}

void Scheduler::pop_stale() {
  while (!queue_.empty() && slots_[queue_.top().slot].gen != queue_.top().gen)
    queue_.pop();
}

SimTime Scheduler::next_time() const {
  auto* self = const_cast<Scheduler*>(this);
  self->pop_stale();
  return queue_.empty() ? kSimTimeInfinity : queue_.top().at;
}

bool Scheduler::step() {
  pop_stale();
  if (queue_.empty()) return false;
  const Entry entry = queue_.top();
  queue_.pop();
  Slot& slot = slots_[entry.slot];
  PTE_CHECK(slot.cb != nullptr, "live queue entry without callback");
  Callback cb = std::move(slot.cb);
  release_slot(entry.slot);
  --live_;
  PTE_CHECK(entry.at >= now_ - kTimeEps, "event queue went backwards in time");
  now_ = std::max(now_, entry.at);
  ++executed_;
  cb();
  return true;
}

void Scheduler::run_until(SimTime until) {
  PTE_REQUIRE(until >= now_ - kTimeEps, "run_until into the past");
  while (true) {
    pop_stale();
    if (queue_.empty() || queue_.top().at > until + kTimeEps) break;
    step();
  }
  now_ = std::max(now_, until);
}

void Scheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    PTE_CHECK(++n <= max_events, "scheduler exceeded max_events — runaway event chain?");
  }
}

}  // namespace ptecps::sim
