// Deterministic random number generation for simulations.
//
// xoshiro256** seeded via splitmix64: fast, high-quality, and — critically
// for reproducing experiments — stable across platforms and standard
// library versions (std::mt19937's distributions are not portable).
// Every trial in the benchmark harness names its seed so any row of any
// table can be regenerated exactly.
#pragma once

#include <cstdint>

namespace ptecps::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n); requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed value with the given mean (= 1/rate).
  double exponential(double mean);

  /// Normally distributed value (Box–Muller; caches the paired deviate).
  double normal(double mean, double stddev);

  /// Derive an independent child generator; `stream` distinguishes children
  /// of the same parent deterministically.
  Rng fork(std::uint64_t stream);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ptecps::sim
