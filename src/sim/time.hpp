// Simulated time.  The whole library measures time in seconds as double;
// SimTime is an alias (not a strong type) because time values flow through
// ODE integration arithmetic constantly.  The epsilon helpers centralize
// the tolerance used when comparing event times.
#pragma once

#include <cmath>

namespace ptecps::sim {

using SimTime = double;

/// Tolerance for comparing simulated times (1 ns at second scale).
inline constexpr SimTime kTimeEps = 1e-9;

/// a == b up to kTimeEps.
inline bool time_eq(SimTime a, SimTime b) { return std::fabs(a - b) <= kTimeEps; }

/// a < b by more than kTimeEps.
inline bool time_lt(SimTime a, SimTime b) { return a < b - kTimeEps; }

/// a <= b up to kTimeEps.
inline bool time_le(SimTime a, SimTime b) { return a <= b + kTimeEps; }

inline constexpr SimTime kSimTimeInfinity = 1e18;

}  // namespace ptecps::sim
