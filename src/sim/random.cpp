#include "sim/random.hpp"

#include <cmath>

#include "util/require.hpp"

namespace ptecps::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits — the standard uniform-double construction.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  PTE_REQUIRE(hi >= lo, "uniform range inverted");
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  PTE_REQUIRE(n > 0, "uniform_int needs n > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = ~0ULL - ~0ULL % n;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  PTE_REQUIRE(mean > 0.0, "exponential mean must be positive");
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

Rng Rng::fork(std::uint64_t stream) {
  // Mix the parent's state with the stream id through splitmix so sibling
  // streams are decorrelated regardless of how much the parent was used.
  std::uint64_t mix = next_u64() ^ (0xA0761D6478BD642FULL * (stream + 1));
  return Rng(mix);
}

}  // namespace ptecps::sim
