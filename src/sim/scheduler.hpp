// Discrete-event scheduler: the time base for every simulation in ptecps.
//
// Events are (time, callback) pairs executed in nondecreasing time order;
// ties execute in scheduling order (FIFO), which makes zero-delay event
// cascades — ubiquitous in hybrid automata with chained transitions —
// deterministic.  Scheduled events can be cancelled through their handle
// (lazy deletion), which the hybrid engine uses to retract location-dwell
// timeouts when a location is left early.
//
// Storage is a slab: callbacks live in a vector of slots with an
// intrusive free list, and handles are (slot, generation) pairs.  The
// generation counter is bumped every time a slot is vacated (execution or
// cancellation), so a stale handle to a reused slot can never cancel the
// slot's new occupant, and the schedule/cancel hot path — dwell timeouts
// retracted on almost every location change — reuses slots instead of
// churning node allocations in hash maps.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace ptecps::sim {

/// Opaque handle to a scheduled event; value-semantic and cheap to copy.
/// A default-constructed handle is invalid.  Handles are generation-safe:
/// once the event ran or was cancelled, the handle stays dead even if its
/// storage slot is reused by a later event.
struct EventHandle {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;  // 0 = invalid; live slots carry odd generations
  bool valid() const { return gen != 0; }
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `at` (>= now). Returns a cancellable handle.
  EventHandle schedule_at(SimTime at, Callback cb);

  /// Schedule `cb` after `delay` (>= 0) from now.
  EventHandle schedule_in(SimTime delay, Callback cb);

  /// Cancel a pending event.  Returns false if it already ran, was already
  /// cancelled, or the handle is empty.
  bool cancel(EventHandle handle);

  /// Current simulated time (the time of the event being executed, or of
  /// the last executed event between events).
  SimTime now() const { return now_; }

  bool empty() const { return live_ == 0; }

  /// Time of the next pending event (kSimTimeInfinity if none).
  SimTime next_time() const;

  /// Execute the single next event.  Returns false if the queue is empty.
  bool step();

  /// Run events until the queue is exhausted or the next event is later
  /// than `until`; finally advances now() to `until` if it is larger.
  void run_until(SimTime until);

  /// Run everything (until empty).  Guarded by `max_events` against
  /// accidental infinite event chains.
  void run(std::uint64_t max_events = 100'000'000ULL);

  std::uint64_t executed_events() const { return executed_; }
  std::uint64_t pending_events() const { return live_; }

  /// Slab capacity (allocated slots, live or free) — observability for the
  /// perf bench and the slab-reuse tests.
  std::size_t slab_slots() const { return slots_.size(); }

 private:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// One slab slot.  `gen` is odd while the slot is occupied and even
  /// while it is free; vacating a slot (execute/cancel) bumps it, so any
  /// outstanding handle (which captured an odd generation) mismatches.
  struct Slot {
    Callback cb;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNoSlot;
  };
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  /// Drop queue entries whose slot generation no longer matches (their
  /// event was cancelled, and possibly the slot already reused).
  void pop_stale();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t live_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
};

}  // namespace ptecps::sim
