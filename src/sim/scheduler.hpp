// Discrete-event scheduler: the time base for every simulation in ptecps.
//
// Events are (time, callback) pairs executed in nondecreasing time order;
// ties execute in scheduling order (FIFO), which makes zero-delay event
// cascades — ubiquitous in hybrid automata with chained transitions —
// deterministic.  Scheduled events can be cancelled through their handle
// (lazy deletion), which the hybrid engine uses to retract location-dwell
// timeouts when a location is left early.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace ptecps::sim {

/// Opaque handle to a scheduled event; value-semantic and cheap to copy.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `at` (>= now). Returns a cancellable handle.
  EventHandle schedule_at(SimTime at, Callback cb);

  /// Schedule `cb` after `delay` (>= 0) from now.
  EventHandle schedule_in(SimTime delay, Callback cb);

  /// Cancel a pending event.  Returns false if it already ran, was already
  /// cancelled, or the handle is empty.
  bool cancel(EventHandle handle);

  /// Current simulated time (the time of the event being executed, or of
  /// the last executed event between events).
  SimTime now() const { return now_; }

  bool empty() const;

  /// Time of the next pending event (kSimTimeInfinity if none).
  SimTime next_time() const;

  /// Execute the single next event.  Returns false if the queue is empty.
  bool step();

  /// Run events until the queue is exhausted or the next event is later
  /// than `until`; finally advances now() to `until` if it is larger.
  void run_until(SimTime until);

  /// Run everything (until empty).  Guarded by `max_events` against
  /// accidental infinite event chains.
  void run(std::uint64_t max_events = 100'000'000ULL);

  std::uint64_t executed_events() const { return executed_; }
  std::uint64_t pending_events() const;

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // tie-break: FIFO among equal times
    std::uint64_t id;
  };
  struct EntryLater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void pop_cancelled();

  SimTime now_ = 0.0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, EntryLater> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
};

}  // namespace ptecps::sim
