// Unit + property tests for the Theorem 1 constraint checker (c1–c7) and
// the closed-form parameter synthesizer.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/constraints.hpp"
#include "core/monitor.hpp"
#include "core/synthesis.hpp"

namespace ptecps::core {
namespace {

bool has_violation(const ConstraintReport& r, ConstraintId id) {
  for (const auto& v : r.violations) {
    if (v.id == id) return true;
  }
  return false;
}

TEST(Constraints, PaperConfigurationSatisfiesAll) {
  const PatternConfig cfg = PatternConfig::laser_tracheotomy();
  const ConstraintReport r = check_theorem1(cfg);
  EXPECT_TRUE(r.ok) << r.message();
  // The paper's derived quantities.
  EXPECT_DOUBLE_EQ(cfg.t_ls1(), 44.0);             // 3 + 35 + 6
  EXPECT_DOUBLE_EQ(cfg.risky_dwell_bound(), 47.0);  // T^max_wait + T^max_LS1
}

TEST(Constraints, C1NonPositiveConstantCaught) {
  PatternConfig cfg = PatternConfig::laser_tracheotomy();
  cfg.t_fb_min_0 = 0.0;
  const ConstraintReport r = check_theorem1(cfg);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_violation(r, ConstraintId::kC1));
}

TEST(Constraints, C2LeaseWindowVsWait) {
  PatternConfig cfg = PatternConfig::laser_tracheotomy();
  cfg.t_wait_max = 23.0;  // N * 23 = 46 > 44; also breaks c3/c4/c6/cΔ? (Δ=0.1 ok)
  const ConstraintReport r = check_theorem1(cfg);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(has_violation(r, ConstraintId::kC2));
}

TEST(Constraints, C3RequestTimeoutWindow) {
  PatternConfig cfg = PatternConfig::laser_tracheotomy();
  cfg.t_req_max_n = 2.0;  // below (N-1)*T^max_wait = 3
  EXPECT_TRUE(has_violation(check_theorem1(cfg), ConstraintId::kC3));
  cfg.t_req_max_n = 45.0;  // above T^max_LS1 = 44
  EXPECT_TRUE(has_violation(check_theorem1(cfg), ConstraintId::kC3));
}

TEST(Constraints, C4OccupancyWindows) {
  PatternConfig cfg = PatternConfig::laser_tracheotomy();
  cfg.entities[1].t_run_max = 40.0;  // 3 + (10+40+1.5) = 54.5 > 44
  EXPECT_TRUE(has_violation(check_theorem1(cfg), ConstraintId::kC4));
}

TEST(Constraints, C5EnterSpacing) {
  PatternConfig cfg = PatternConfig::laser_tracheotomy();
  cfg.entities[1].t_enter_max = 5.9;  // 3 + 3 = 6 > 5.9
  EXPECT_TRUE(has_violation(check_theorem1(cfg), ConstraintId::kC5));
}

TEST(Constraints, C6LeaseNesting) {
  PatternConfig cfg = PatternConfig::laser_tracheotomy();
  cfg.entities[0].t_run_max = 30.0;  // 3+30=33 <= 3+31.5=34.5
  EXPECT_TRUE(has_violation(check_theorem1(cfg), ConstraintId::kC6));
}

TEST(Constraints, C7ExitSafeguard) {
  PatternConfig cfg = PatternConfig::laser_tracheotomy();
  cfg.entities[0].t_exit = 1.5;  // strict inequality required
  EXPECT_TRUE(has_violation(check_theorem1(cfg), ConstraintId::kC7));
}

TEST(Constraints, DeltaRefinement) {
  PatternConfig cfg = PatternConfig::laser_tracheotomy();
  cfg.delivery_slack = 2.0;  // 2Δ = 4 > T^max_wait = 3
  EXPECT_TRUE(has_violation(check_theorem1(cfg), ConstraintId::kCDelta));
}

TEST(Constraints, BoundsComputation) {
  const PatternConfig cfg = PatternConfig::laser_tracheotomy();
  const PatternBounds b = compute_bounds(cfg);
  EXPECT_DOUBLE_EQ(b.risky_dwell_bound, 47.0);
  ASSERT_EQ(b.enter_spacing_lower.size(), 1u);
  EXPECT_DOUBLE_EQ(b.enter_spacing_lower[0], 7.0);  // 10 - 3 >= 3 required
  EXPECT_DOUBLE_EQ(b.exit_spacing_lower[0], 6.0);   // T_exit,1
}

TEST(MonitorParams, FromConfigDefaultsToTheoremBound) {
  const PatternConfig cfg = PatternConfig::laser_tracheotomy();
  const MonitorParams p = MonitorParams::from_config(cfg);
  ASSERT_EQ(p.dwell_bounds.size(), 2u);
  EXPECT_DOUBLE_EQ(p.dwell_bounds[0], 47.0);
  const MonitorParams q = MonitorParams::from_config(cfg, 60.0);
  EXPECT_DOUBLE_EQ(q.dwell_bounds[1], 60.0);
}

TEST(Synthesis, ReproducesValidConfigForPaperLikeInput) {
  SynthesisRequest req;
  req.n_remotes = 2;
  req.t_risky_min = {3.0};
  req.t_safe_min = {1.5};
  req.initializer_lease = 20.0;
  req.t_wait_max = 3.0;
  const PatternConfig cfg = synthesize(req);
  EXPECT_TRUE(check_theorem1(cfg).ok) << check_theorem1(cfg).message();
  EXPECT_GT(cfg.entity(2).t_enter_max - cfg.entity(1).t_enter_max, 3.0 - 1e-9);
  EXPECT_GT(cfg.entity(1).t_exit, 1.5);
  EXPECT_DOUBLE_EQ(cfg.entity(2).t_run_max, 20.0);
}

TEST(Synthesis, RejectsBadInputs) {
  SynthesisRequest req;
  req.n_remotes = 1;
  EXPECT_THROW(synthesize(req), std::invalid_argument);
  req.n_remotes = 2;
  req.t_risky_min = {1.0};
  req.t_safe_min = {1.0};
  req.margin = 0.0;
  EXPECT_THROW(synthesize(req), std::invalid_argument);
}

// Property: for a grid of (N, lease, wait, safeguard scale) the
// synthesizer always produces a Theorem-1-satisfying configuration.
struct SynthesisCase {
  std::size_t n;
  double lease;
  double wait;
  double scale;
};

class SynthesisProperty : public ::testing::TestWithParam<SynthesisCase> {};

TEST_P(SynthesisProperty, AlwaysSatisfiesTheorem1) {
  const SynthesisCase c = GetParam();
  SynthesisRequest req;
  req.n_remotes = c.n;
  for (std::size_t i = 0; i + 1 < c.n; ++i) {
    req.t_risky_min.push_back(c.scale * (1.0 + 0.5 * static_cast<double>(i)));
    req.t_safe_min.push_back(c.scale * (0.5 + 0.25 * static_cast<double>(i)));
  }
  req.initializer_lease = c.lease;
  req.t_wait_max = c.wait;
  req.delivery_slack = c.wait / 4.0;
  const PatternConfig cfg = synthesize(req);
  const ConstraintReport r = check_theorem1(cfg);
  EXPECT_TRUE(r.ok) << r.message();
  // The synthesized enter chain respects every safeguard with margin.
  for (std::size_t i = 1; i < c.n; ++i)
    EXPECT_GT(cfg.entity(i + 1).t_enter_max - cfg.entity(i).t_enter_max,
              cfg.t_risky_min_between(i) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SynthesisProperty,
    ::testing::Values(SynthesisCase{2, 10.0, 1.0, 0.5}, SynthesisCase{2, 60.0, 3.0, 2.0},
                      SynthesisCase{3, 20.0, 2.0, 1.0}, SynthesisCase{4, 15.0, 0.5, 0.25},
                      SynthesisCase{5, 30.0, 1.5, 1.0}, SynthesisCase{6, 45.0, 1.0, 0.5},
                      SynthesisCase{8, 25.0, 0.75, 0.3}));

TEST(Config, DescribeMentionsEveryEntity) {
  const PatternConfig cfg = PatternConfig::laser_tracheotomy();
  const std::string d = cfg.describe();
  EXPECT_NE(d.find("xi1"), std::string::npos);
  EXPECT_NE(d.find("xi2"), std::string::npos);
  EXPECT_NE(d.find("T^min_risky"), std::string::npos);
}

TEST(Config, AccessorsValidateRange) {
  const PatternConfig cfg = PatternConfig::laser_tracheotomy();
  EXPECT_THROW(cfg.entity(0), std::invalid_argument);
  EXPECT_THROW(cfg.entity(3), std::invalid_argument);
  EXPECT_THROW(cfg.t_risky_min_between(2), std::invalid_argument);
}

}  // namespace
}  // namespace ptecps::core
