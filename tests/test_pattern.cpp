// Integration tests of the lease design pattern automata (§IV-A) driven
// through the wireless substrate: the protocol happy path, cancellation,
// abort, timeout unwinding, and lease expiry under total message loss.
#include <gtest/gtest.h>

#include <memory>

#include "core/config.hpp"
#include "core/deployment.hpp"
#include "core/events.hpp"
#include "core/monitor.hpp"
#include "core/synthesis.hpp"
#include "net/bridge.hpp"
#include "net/star_network.hpp"

namespace ptecps::core {
namespace {

namespace ev = events;

/// Harness: pattern system + star network with configurable loss.
struct PatternHarness {
  PatternConfig config;
  sim::Rng rng{12345};
  std::unique_ptr<hybrid::Engine> engine;
  std::unique_ptr<net::StarNetwork> network;
  std::unique_ptr<net::NetEventRouter> router;
  std::unique_ptr<PteMonitor> monitor;
  std::size_t n;

  explicit PatternHarness(PatternConfig cfg, bool with_lease = true,
                          net::StarNetwork::LossFactory loss = {},
                          net::ChannelConfig channel = net::ChannelConfig{0.0, 0.0, 0.0, 0.5})
      : config(std::move(cfg)), n(config.n_remotes) {
    BuiltSystem built = build_pattern_system(config, ApprovalSpec{}, with_lease);
    engine = std::make_unique<hybrid::Engine>(std::move(built.automata));
    network = std::make_unique<net::StarNetwork>(engine->scheduler(), rng, n);
    net::StarNetwork::LossFactory factory =
        loss ? std::move(loss)
             : net::StarNetwork::LossFactory(
                   [] { return std::make_unique<net::PerfectLink>(); });
    network->configure_all(factory, channel);
    router = std::make_unique<net::NetEventRouter>(*network, built.automaton_of_entity);
    built.install_routes(*router);
    engine->set_router(router.get());
    router->attach(*engine);
    monitor = std::make_unique<PteMonitor>(MonitorParams::from_config(config));
    std::vector<std::size_t> entity_of(n + 1);
    for (std::size_t i = 0; i <= n; ++i) entity_of[i] = i;
    monitor->attach(*engine, entity_of);
    engine->init();
  }

  std::string loc(std::size_t automaton) const {
    return engine->current_location_name(automaton);
  }
  void request() { engine->inject(n, ev::cmd_request(n)); }
  void cancel() { engine->inject(n, ev::cmd_cancel(n)); }
  void run_to(double t) { engine->run_until(t); }
  void kill_all_links() {
    for (net::EntityId r = 1; r <= n; ++r) {
      network->uplink(r).set_loss_model(std::make_unique<net::BernoulliLoss>(1.0));
      network->downlink(r).set_loss_model(std::make_unique<net::BernoulliLoss>(1.0));
    }
  }
};

TEST(Pattern, HappyPathLeasesInOrderAndExpiresSafely) {
  PatternHarness h(PatternConfig::laser_tracheotomy());
  h.run_to(15.0);  // supervisor Fall-Back dwell (13 s) satisfied
  h.request();
  h.run_to(15.0);  // drain the zero-delay delivery cascade
  // Chain at t=15 (zero-delay links): req -> Lease xi1 -> LeaseReq(1) ->
  // participant L0 -> approve -> Lease xi2 -> Approve(2) -> Entering.
  EXPECT_EQ(h.loc(0), "Lease xi2");
  EXPECT_EQ(h.loc(1), "Entering");
  EXPECT_EQ(h.loc(2), "Entering");

  // Participant risky at 15+3; initializer at 15+10 (c5 spacing >= 3 s).
  h.run_to(18.5);
  EXPECT_EQ(h.loc(1), "Risky Core");
  EXPECT_EQ(h.loc(2), "Entering");
  h.run_to(25.5);
  EXPECT_EQ(h.loc(2), "Risky Core");

  // Let every lease expire (no cancel): the initializer stops at
  // 15+10+20=45, exits by 46.5; the participant expires at 15+3+35=53,
  // exits by 59; the supervisor unwinds to Fall-Back.
  h.run_to(120.0);
  EXPECT_EQ(h.loc(0), "Fall-Back");
  EXPECT_EQ(h.loc(1), "Fall-Back");
  EXPECT_EQ(h.loc(2), "Fall-Back");
  h.monitor->finalize(120.0);
  EXPECT_TRUE(h.monitor->violations().empty()) << h.monitor->summary();
  EXPECT_EQ(h.monitor->episodes(1), 1u);
  EXPECT_EQ(h.monitor->episodes(2), 1u);

  // Enter-risky safeguard: xi2 entered >= 3 s after xi1.
  const auto& i1 = h.monitor->intervals(1)[0];
  const auto& i2 = h.monitor->intervals(2)[0];
  EXPECT_GE(i2.begin - i1.begin, h.config.t_risky_min_between(1) - 1e-9);
  // Exit-risky safeguard: xi1 exited >= 1.5 s after xi2.
  EXPECT_GE(i1.end - i2.end, h.config.t_safe_min_between(1) - 1e-9);
  // Rule 1: dwell bounds.
  EXPECT_LE(i1.duration(), h.config.risky_dwell_bound() + 1e-9);
  EXPECT_LE(i2.duration(), h.config.risky_dwell_bound() + 1e-9);
}

TEST(Pattern, SurgeonCancelUnwindsInReverseOrder) {
  PatternHarness h(PatternConfig::laser_tracheotomy());
  h.run_to(15.0);
  h.request();
  h.run_to(30.0);  // both risky (xi2 entered at 25)
  ASSERT_EQ(h.loc(2), "Risky Core");
  h.cancel();
  // The initializer exits locally at once, Exiting 1 for 1.5 s.
  EXPECT_EQ(h.loc(2), "Exiting 1");
  h.run_to(31.6);
  EXPECT_EQ(h.loc(2), "Fall-Back");
  // Supervisor received CancelReq then Exit(2) and cancelled xi1.
  h.run_to(32.0);
  EXPECT_EQ(h.loc(1), "Exiting 1");
  h.run_to(45.0);
  EXPECT_EQ(h.loc(0), "Fall-Back");
  EXPECT_EQ(h.loc(1), "Fall-Back");
  h.monitor->finalize(45.0);
  EXPECT_TRUE(h.monitor->violations().empty()) << h.monitor->summary();
}

TEST(Pattern, AbortOnApprovalConditionViolation) {
  PatternHarness h(PatternConfig::laser_tracheotomy());
  h.run_to(15.0);
  h.request();
  h.run_to(30.0);
  ASSERT_EQ(h.loc(2), "Risky Core");
  // ApprovalCondition fails (e.g. SpO2 below threshold).
  h.engine->set_var(0, h.engine->automaton(0).var_id("approval_val"), 0.0);
  EXPECT_EQ(h.loc(0), "Abort Lease xi2");
  h.run_to(30.1);
  EXPECT_EQ(h.loc(2), "Exiting 1");
  h.run_to(60.0);
  EXPECT_EQ(h.loc(0), "Fall-Back");
  EXPECT_EQ(h.loc(1), "Fall-Back");
  EXPECT_EQ(h.loc(2), "Fall-Back");
  h.monitor->finalize(60.0);
  EXPECT_TRUE(h.monitor->violations().empty()) << h.monitor->summary();
}

TEST(Pattern, RequestTimesOutWhenEverythingIsLost) {
  auto total_loss = [] {
    return std::unique_ptr<net::LossModel>(std::make_unique<net::BernoulliLoss>(1.0));
  };
  PatternHarness h(PatternConfig::laser_tracheotomy(), true, total_loss);
  h.run_to(20.0);
  h.request();
  EXPECT_EQ(h.loc(2), "Requesting");
  EXPECT_EQ(h.loc(0), "Fall-Back");  // req lost
  h.run_to(26.0);                    // T^max_req,2 = 5 s
  EXPECT_EQ(h.loc(2), "Fall-Back");
  h.monitor->finalize(26.0);
  EXPECT_TRUE(h.monitor->violations().empty());
  EXPECT_EQ(h.monitor->episodes(2), 0u);
}

TEST(Pattern, LeaseExpiryProtectsWhenCancelAndAbortAreLost) {
  // Deliver the session-establishing messages, then lose everything:
  // cancel/abort/exit all vanish.  Leases must still restore Fall-Back
  // with zero PTE violations (Theorem 1 under arbitrary loss).
  PatternHarness h(PatternConfig::laser_tracheotomy());
  h.run_to(15.0);
  h.request();
  h.run_to(26.0);
  ASSERT_EQ(h.loc(2), "Risky Core");
  h.kill_all_links();
  h.cancel();  // the local laser stop works; CancelReq(2) to xi0 is lost
  EXPECT_EQ(h.loc(2), "Exiting 1");
  h.run_to(180.0);
  // Everyone recovered autonomously.
  EXPECT_EQ(h.loc(0), "Fall-Back");
  EXPECT_EQ(h.loc(1), "Fall-Back");
  EXPECT_EQ(h.loc(2), "Fall-Back");
  h.monitor->finalize(180.0);
  EXPECT_TRUE(h.monitor->violations().empty()) << h.monitor->summary();
}

TEST(Pattern, WithoutLeaseStuckRiskyWhenCancelLost) {
  // The §V baseline: no entity lease timers.  Lose all wireless traffic
  // after the session forms: the ventilator-participant never leaves
  // Risky Core within the dwell bound -> Rule 1 violation.
  PatternHarness h(PatternConfig::laser_tracheotomy(), /*with_lease=*/false);
  h.run_to(15.0);
  h.request();
  h.run_to(26.0);
  ASSERT_EQ(h.loc(2), "Risky Core");
  h.kill_all_links();
  h.cancel();
  h.run_to(300.0);
  EXPECT_EQ(h.loc(1), "Risky Core");  // stuck: no lease, no reachable cancel
  h.monitor->finalize(300.0);
  EXPECT_FALSE(h.monitor->violations().empty());
  EXPECT_GE(h.monitor->violation_count(PteViolationKind::kDwellBound), 1u);
}

TEST(Pattern, FourEntityChainMaintainsFullOrdering) {
  // N=4 synthesized configuration: the pattern is not hard-wired to the
  // case study's N=2.
  SynthesisRequest req;
  req.n_remotes = 4;
  req.t_risky_min = {1.0, 2.0, 0.5};
  req.t_safe_min = {0.5, 1.0, 0.25};
  req.initializer_lease = 10.0;
  req.t_wait_max = 1.0;
  req.t_fb_min_0 = 2.0;
  req.delivery_slack = 0.05;
  PatternConfig cfg = synthesize(req);

  PatternHarness h(cfg);
  h.run_to(5.0);
  h.request();
  h.run_to(405.0);
  EXPECT_EQ(h.loc(0), "Fall-Back");
  for (std::size_t i = 1; i <= 4; ++i) EXPECT_EQ(h.loc(i), "Fall-Back") << "entity " << i;
  h.monitor->finalize(405.0);
  EXPECT_TRUE(h.monitor->violations().empty()) << h.monitor->summary();
  for (std::size_t i = 1; i <= 4; ++i)
    EXPECT_EQ(h.monitor->episodes(i), 1u) << "entity " << i;
}

TEST(Pattern, ParticipationDenyReturnsEveryoneToFallBack) {
  PatternHarness h(PatternConfig::laser_tracheotomy());
  // Participant denies (ParticipationCondition false).
  h.engine->set_var(1, h.engine->automaton(1).var_id("participation_val"), 0.0);
  h.run_to(15.0);
  h.request();
  // Denial unwinds immediately: supervisor back to Fall-Back, initializer
  // still Requesting until its timeout.
  EXPECT_EQ(h.loc(0), "Fall-Back");
  EXPECT_EQ(h.loc(1), "Fall-Back");
  h.run_to(21.0);
  EXPECT_EQ(h.loc(2), "Fall-Back");
  h.monitor->finalize(21.0);
  EXPECT_TRUE(h.monitor->violations().empty());
  EXPECT_EQ(h.monitor->episodes(1), 0u);
  EXPECT_EQ(h.monitor->episodes(2), 0u);
}

TEST(Pattern, SupervisorRequiresFallBackDwellBeforeLeasing) {
  PatternHarness h(PatternConfig::laser_tracheotomy());
  h.run_to(5.0);  // below T^min_fb,0 = 13
  h.request();
  EXPECT_EQ(h.loc(0), "Fall-Back");    // request ignored
  EXPECT_EQ(h.loc(2), "Requesting");   // initializer waits, then gives up
  h.run_to(11.0);
  EXPECT_EQ(h.loc(2), "Fall-Back");
  h.monitor->finalize(11.0);
  EXPECT_TRUE(h.monitor->violations().empty());
}

}  // namespace
}  // namespace ptecps::core
