// The daemon layer: admission-queue semantics (priority order, explicit
// rejection, drain/stop lifecycle), the framed wire format, and a real
// Server end to end on an ephemeral port — framed submissions match an
// in-process Service::run on every deterministic field, the HTTP shim
// serves /healthz, /metrics and /run, and drain rejects new work while
// still answering what was admitted.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "api/service.hpp"
#include "service/queue.hpp"
#include "service/server.hpp"
#include "util/json.hpp"
#include "util/sockio.hpp"

namespace ptecps {
namespace {

using util::Json;

service::QueuedJob make_job(int priority, const std::string& id) {
  service::QueuedJob q;
  q.job = api::Job::for_scenario("laser-tracheotomy");
  q.priority = priority;
  q.id = id;
  return q;
}

// ---------------------------------------------------------------------------
// AdmissionQueue
// ---------------------------------------------------------------------------

TEST(AdmissionQueue, HighestPriorityFirstFifoWithin) {
  service::AdmissionQueue queue(8);
  EXPECT_EQ(queue.push(make_job(service::kPriorityLow, "low-1")),
            service::AdmitStatus::kAdmitted);
  EXPECT_EQ(queue.push(make_job(service::kPriorityNormal, "norm-1")),
            service::AdmitStatus::kAdmitted);
  EXPECT_EQ(queue.push(make_job(service::kPriorityHigh, "high-1")),
            service::AdmitStatus::kAdmitted);
  EXPECT_EQ(queue.push(make_job(service::kPriorityHigh, "high-2")),
            service::AdmitStatus::kAdmitted);
  EXPECT_EQ(queue.push(make_job(service::kPriorityNormal, "norm-2")),
            service::AdmitStatus::kAdmitted);
  EXPECT_EQ(queue.depth(), 5u);

  std::vector<std::string> order;
  for (int i = 0; i < 5; ++i) order.push_back(queue.pop()->id);
  EXPECT_EQ(order, (std::vector<std::string>{"high-1", "high-2", "norm-1", "norm-2",
                                             "low-1"}));
}

TEST(AdmissionQueue, FullQueueRejectsInsteadOfBlocking) {
  service::AdmissionQueue queue(2);
  EXPECT_EQ(queue.push(make_job(1, "a")), service::AdmitStatus::kAdmitted);
  EXPECT_EQ(queue.push(make_job(1, "b")), service::AdmitStatus::kAdmitted);
  // The third answer is immediate and explicit — never a blocked client.
  EXPECT_EQ(queue.push(make_job(2, "c")), service::AdmitStatus::kQueueFull);
  queue.pop();
  EXPECT_EQ(queue.push(make_job(1, "d")), service::AdmitStatus::kAdmitted);
}

TEST(AdmissionQueue, DrainRejectsNewButDeliversAdmitted) {
  service::AdmissionQueue queue(4);
  queue.push(make_job(1, "before"));
  queue.drain();
  EXPECT_EQ(queue.push(make_job(1, "after")), service::AdmitStatus::kDraining);
  ASSERT_TRUE(queue.pop().has_value());  // the admitted job still comes out
  queue.stop();
  EXPECT_FALSE(queue.pop().has_value());  // worker exit signal
}

TEST(AdmissionQueue, StopWakesBlockedPoppers) {
  service::AdmissionQueue queue(4);
  std::optional<service::QueuedJob> got;
  std::thread popper([&] { got = queue.pop(); });
  queue.stop();
  popper.join();
  EXPECT_FALSE(got.has_value());
}

// ---------------------------------------------------------------------------
// Framed wire format
// ---------------------------------------------------------------------------

TEST(Frames, RoundTripOverALoopbackSocket) {
  util::Socket listener = util::tcp_listen("127.0.0.1", 0);
  const int port = util::bound_port(listener);
  std::thread echo([&] {
    util::Socket conn(::accept(listener.fd(), nullptr, nullptr));
    char magic[4];
    conn.read_exact(magic, 4);
    while (std::optional<std::string> frame = util::read_frame(conn))
      util::write_frame(conn, *frame);
  });
  util::Socket client = util::tcp_connect("127.0.0.1", port);
  util::write_frame_magic(client);
  util::write_frame(client, "{\"hello\":1}");
  EXPECT_EQ(util::read_frame(client).value(), "{\"hello\":1}");
  util::write_frame(client, "");  // zero-length payloads are legal
  EXPECT_EQ(util::read_frame(client).value(), "");
  client.close();
  echo.join();
}

TEST(Frames, OversizedLengthIsAProtocolErrorNotAnAllocation) {
  util::Socket listener = util::tcp_listen("127.0.0.1", 0);
  const int port = util::bound_port(listener);
  std::thread peer([&] {
    util::Socket conn(::accept(listener.fd(), nullptr, nullptr));
    const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};  // ~4GB length
    conn.write_all(huge, 4);
  });
  util::Socket client = util::tcp_connect("127.0.0.1", port);
  EXPECT_THROW(util::read_frame(client), util::SockError);
  peer.join();
}

// ---------------------------------------------------------------------------
// Server end to end (ephemeral port, real sockets)
// ---------------------------------------------------------------------------

Json framed_request(int port, const Json& request) {
  util::Socket sock = util::tcp_connect("127.0.0.1", port);
  util::write_frame_magic(sock);
  util::write_frame(sock, request.dump_canonical());
  const std::optional<std::string> reply = util::read_frame(sock);
  EXPECT_TRUE(reply.has_value());
  return Json::parse(reply.value_or("{}"));
}

Json smoke_job_json(const std::string& name) {
  Json job = Json::object();
  job.set("scenario", name);
  job.set("mode", "verify");
  job.set("smoke", true);
  return job;
}

TEST(Server, FramedJobMatchesInProcessExecution) {
  service::ServerOptions options;
  options.workers = 2;
  service::Server server(options);
  server.start();

  Json envelope = Json::object();
  envelope.set("job", smoke_job_json("adversarial-drop"));
  envelope.set("id", "req-1");
  const Json resp = framed_request(server.port(), envelope);
  EXPECT_TRUE(resp.at("ok").as_bool()) << resp.dump(2);
  EXPECT_EQ(resp.at("id").as_string(), "req-1");
  const api::JobResult remote = api::JobResult::from_json(resp.at("result"));

  api::Job job = api::Job::from_json(smoke_job_json("adversarial-drop"));
  job.tuning.threads = 1;  // the daemon's per-job default
  const api::JobResult local = api::Service().run(job);

  EXPECT_EQ(remote.verdict, local.verdict);
  EXPECT_EQ(remote.ok, local.ok);
  ASSERT_TRUE(remote.report.has_value());
  const auto& rv = remote.report->scenarios[0].verification;
  const auto& lv = local.report->scenarios[0].verification;
  ASSERT_TRUE(rv.has_value());
  EXPECT_EQ(rv->states_explored, lv->states_explored);
  EXPECT_EQ(rv->transitions, lv->transitions);

  server.drain();
}

TEST(Server, BareJobAndInvalidPayloadsOverFraming) {
  service::ServerOptions options;
  options.workers = 1;
  service::Server server(options);
  server.start();

  // A bare Job (no envelope) is accepted.
  const Json ok = framed_request(server.port(), smoke_job_json("laser-tracheotomy"));
  EXPECT_TRUE(ok.at("ok").as_bool()) << ok.dump(2);

  // Garbage JSON shape comes back as an error response, not a hangup.
  Json bad = Json::object();
  bad.set("job", Json::object());
  const Json err = framed_request(server.port(), bad);
  EXPECT_FALSE(err.at("ok").as_bool());
  EXPECT_NE(err.find("error"), nullptr);

  // Out-of-range priority is a request error, not a clamp.
  Json envelope = Json::object();
  envelope.set("job", smoke_job_json("laser-tracheotomy"));
  envelope.set("priority", 9);
  const Json rejected = framed_request(server.port(), envelope);
  EXPECT_FALSE(rejected.at("ok").as_bool());

  server.drain();
  EXPECT_GE(server.metrics_json().at("jobs").at("protocol_errors").as_uint(), 1u);
}

TEST(Server, HttpShimServesHealthMetricsAndRun) {
  service::ServerOptions options;
  options.workers = 1;
  service::Server server(options);
  server.start();

  {
    util::Socket sock = util::tcp_connect("127.0.0.1", server.port());
    const std::string req = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
    sock.write_all(req.data(), req.size());
    std::string response;
    char buf[512];
    for (std::size_t n; (n = sock.read_some(buf, sizeof buf)) > 0;)
      response.append(buf, n);
    EXPECT_NE(response.find("200"), std::string::npos);
    EXPECT_NE(response.find("ok"), std::string::npos);
  }
  {
    util::Socket sock = util::tcp_connect("127.0.0.1", server.port());
    const std::string body = smoke_job_json("laser-tracheotomy").dump_canonical();
    std::string req = "POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: ";
    req += std::to_string(body.size()) + "\r\n\r\n" + body;
    sock.write_all(req.data(), req.size());
    std::string response;
    char buf[4096];
    for (std::size_t n; (n = sock.read_some(buf, sizeof buf)) > 0;)
      response.append(buf, n);
    const std::size_t json_at = response.find("\r\n\r\n");
    ASSERT_NE(json_at, std::string::npos);
    const Json resp = Json::parse(response.substr(json_at + 4));
    EXPECT_TRUE(resp.at("ok").as_bool()) << resp.dump(2);
  }

  const Json metrics = server.metrics_json();
  EXPECT_GE(metrics.at("jobs").at("completed").as_uint(), 1u);
  EXPECT_GE(metrics.at("connections").at("http_requests").as_uint(), 2u);

  server.drain();
}

TEST(Server, DrainRejectsNewJobsAndHealthzFlips) {
  service::ServerOptions options;
  options.workers = 1;
  service::Server server(options);
  server.start();
  const int port = server.port();

  // One job completes while serving...
  EXPECT_TRUE(framed_request(port, smoke_job_json("laser-tracheotomy")).at("ok").as_bool());
  server.drain();
  // ...after drain the listener is gone entirely.
  EXPECT_THROW(util::tcp_connect("127.0.0.1", port), util::SockError);
  EXPECT_TRUE(server.draining());
  EXPECT_EQ(server.metrics_json().at("draining").as_bool(), true);
}

}  // namespace
}  // namespace ptecps
