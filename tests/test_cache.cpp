// The content-addressed result cache (api/cache.hpp) and its wiring
// through Service::run / run_matrix: hits reproduce cold verdicts
// bit-for-bit, expectations are re-derived per job, out-of-budget
// frontiers warm-resume, and the store degrades (never errors) on
// corruption and stays under its size cap.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "api/service.hpp"
#include "scenarios/registry.hpp"
#include "util/text.hpp"

namespace ptecps::api {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("ptecps-" + name);
  fs::remove_all(dir);
  return dir.string();
}

Service cached_service(const std::string& dir, std::uint64_t max_bytes = 0) {
  ServiceOptions options;
  options.cache_dir = dir;
  if (max_bytes > 0) options.cache_max_bytes = max_bytes;
  return Service(options);
}

Job smoke_job(const std::string& name) {
  Job job = Job::for_scenario(name);
  job.smoke = true;
  return job;
}

/// Everything the acceptance bar compares: verdict, state counts, and
/// the counterexample's canonical bytes (never wall clock or counters).
std::string fingerprint(const JobResult& r) {
  std::string out = r.verdict;
  if (r.report.has_value()) {
    for (const campaign::ScenarioOutcome& s : r.report->scenarios) {
      if (!s.verification.has_value()) continue;
      const campaign::VerificationOutcome& v = *s.verification;
      out += util::cat(";", s.name, ":", verify::verify_status_str(v.status), ",",
                       v.states_explored, ",", v.states_stored, ",", v.transitions);
      if (v.counterexample.has_value())
        out += ";" + v.counterexample->to_json().dump_canonical();
    }
  }
  if (r.crossval.has_value())
    for (const scenarios::CrossCheck& c : r.crossval->checks)
      out += util::cat(";xval:", c.scenario, "=", c.consistent);
  return out;
}

/// A deliberately broken registry entry — its cached entry must carry
/// the counterexample byte-for-byte.
std::string violating_scenario() {
  for (const scenarios::RegistryEntry& e : scenarios::registry())
    if (e.expected == verify::VerifyStatus::kViolation) return e.name;
  return scenarios::registry().front().name;
}

TEST(ResultCache, StoreLoadRoundTripAndCorruptionTolerance) {
  ResultCache::Options options;
  options.dir = fresh_dir("roundtrip");
  const ResultCache cache(options);

  util::Json payload = util::Json::object();
  payload.set("verdict", "proved");
  cache.store_result("k1", "some-scenario", payload);
  const auto loaded = cache.load_result("k1");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->dump_canonical(), payload.dump_canonical());
  EXPECT_FALSE(cache.load_result("absent").has_value());

  // A torn / corrupt entry is a miss, never an error.
  {
    std::ofstream out(fs::path(options.dir) / "results" / "k1.json", std::ios::trunc);
    out << "{\"schema\": \"ptecps-cache-result\", \"version\"";
  }
  EXPECT_FALSE(cache.load_result("k1").has_value());

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.results, 1u);
  EXPECT_EQ(cache.clear(), 1u);
  EXPECT_EQ(cache.stats().results, 0u);
}

TEST(ResultCache, ConstructionFailsLoudlyOnUnusablePath) {
  const std::string dir = fresh_dir("blocked");
  fs::create_directories(fs::path(dir).parent_path());
  {
    std::ofstream out(dir);  // the cache root exists as a FILE
    out << "not a directory";
  }
  ResultCache::Options options;
  options.dir = dir;
  try {
    const ResultCache cache(options);
    FAIL() << "expected construction to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(dir), std::string::npos)
        << "diagnostic must name the path: " << e.what();
  }
  fs::remove(dir);
}

TEST(ResultCache, EvictionKeepsTheStoreUnderItsCap) {
  ResultCache::Options options;
  options.dir = fresh_dir("evict");
  options.max_bytes = 64;  // smaller than any single entry
  const ResultCache cache(options);
  util::Json payload = util::Json::object();
  payload.set("verdict", "proved");
  cache.store_result("a", "s", payload);
  cache.store_result("b", "s", payload);
  EXPECT_LE(cache.stats().bytes, options.max_bytes);
}

TEST(ServiceCache, SecondRunHitsWithIdenticalVerdict) {
  const std::string dir = fresh_dir("hit");
  const std::string name = violating_scenario();
  const Service service = cached_service(dir);

  const JobResult cold = service.run(smoke_job(name));
  EXPECT_TRUE(cold.cache.enabled);
  EXPECT_EQ(cold.cache.hits, 0u);
  EXPECT_EQ(cold.cache.misses, 1u);

  const JobResult hit = service.run(smoke_job(name));
  EXPECT_EQ(hit.cache.hits, 1u);
  EXPECT_EQ(hit.cache.misses, 0u);
  EXPECT_EQ(fingerprint(hit), fingerprint(cold));
  EXPECT_EQ(hit.ok, cold.ok);

  // A cache-less service reproduces the same verdict (the cache never
  // changes answers, only work).
  const JobResult uncached = Service().run(smoke_job(name));
  EXPECT_FALSE(uncached.cache.enabled);
  EXPECT_EQ(fingerprint(uncached), fingerprint(cold));
}

TEST(ServiceCache, HitRecomputesExpectationForTheJobAtHand) {
  const std::string dir = fresh_dir("expect");
  const std::string name = violating_scenario();
  const Service service = cached_service(dir);
  const JobResult cold = service.run(smoke_job(name));
  ASSERT_EQ(cold.cache.misses, 1u);

  // Same scenario, contradictory assertion: still a hit (the expectation
  // is not part of the key), but judged against THIS job.
  Job wrong = smoke_job(name);
  wrong.expected = verify::VerifyStatus::kProved;
  const JobResult hit = service.run(wrong);
  EXPECT_EQ(hit.cache.hits, 1u);
  EXPECT_FALSE(hit.expected_match);
  EXPECT_FALSE(hit.ok);
  EXPECT_EQ(fingerprint(hit), fingerprint(cold));
}

TEST(ServiceCache, OutOfBudgetFrontierWarmResumesLargerBudgets) {
  const std::string dir = fresh_dir("resume");
  const std::string name = "three-entity-chain";
  const Service service = cached_service(dir);

  Job small = smoke_job(name);
  small.tuning.max_states = 200;
  const JobResult first = service.run(small);
  ASSERT_EQ(first.verdict, "out-of-budget");

  const JobResult warm = service.run(smoke_job(name));
  EXPECT_EQ(warm.cache.misses, 1u);  // different budget → different key
  EXPECT_EQ(warm.cache.resumes, 1u);

  const JobResult cold = Service().run(smoke_job(name));
  EXPECT_EQ(fingerprint(warm), fingerprint(cold));
}

TEST(ServiceCache, MatrixSecondPassIsAllHits) {
  const std::string dir = fresh_dir("matrix");
  const std::string violating = violating_scenario();
  std::vector<Job> jobs = {smoke_job("three-entity-chain"), smoke_job(violating)};
  const Service service = cached_service(dir);

  const MatrixResult cold = service.run_matrix(jobs);
  EXPECT_EQ(cold.cache.hits, 0u);
  EXPECT_EQ(cold.cache.misses, 2u);
  ASSERT_EQ(cold.rows.size(), 2u);

  const MatrixResult warm = service.run_matrix(jobs);
  EXPECT_EQ(warm.cache.hits, 2u);
  EXPECT_EQ(warm.cache.misses, 0u);
  EXPECT_EQ(warm.ok, cold.ok);
  ASSERT_EQ(warm.rows.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(warm.rows[i].scenario, cold.rows[i].scenario);
    EXPECT_EQ(warm.rows[i].status, cold.rows[i].status);
    EXPECT_EQ(warm.rows[i].expected_match, cold.rows[i].expected_match);
    EXPECT_EQ(warm.rows[i].consistent, cold.rows[i].consistent);
  }
  ASSERT_TRUE(warm.report.has_value());
  ASSERT_TRUE(cold.report.has_value());
  for (std::size_t i = 0; i < 2; ++i) {
    const auto& wv = warm.report->scenarios[i].verification;
    const auto& cv = cold.report->scenarios[i].verification;
    ASSERT_EQ(wv.has_value(), cv.has_value());
    if (!wv.has_value()) continue;
    EXPECT_EQ(wv->status, cv->status);
    EXPECT_EQ(wv->states_explored, cv->states_explored);
    EXPECT_EQ(wv->states_stored, cv->states_stored);
    EXPECT_EQ(wv->transitions, cv->transitions);
    ASSERT_EQ(wv->counterexample.has_value(), cv->counterexample.has_value());
    if (wv->counterexample.has_value())
      EXPECT_EQ(wv->counterexample->to_json().dump_canonical(),
                cv->counterexample->to_json().dump_canonical());
  }

  // A solo run of a matrix-cached scenario hits the same entry.
  const JobResult solo = service.run(smoke_job(violating));
  EXPECT_EQ(solo.cache.hits, 1u);
}

}  // namespace
}  // namespace ptecps::api
