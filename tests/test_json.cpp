// The shared JSON layer (util/json.hpp): value semantics, strict
// parsing, writer round-trips, and the non-finite-double regression that
// motivated moving every JSON producer onto one writer.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "util/json.hpp"

namespace ptecps::util {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(Json::parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, IntegersKeepExactIdentity) {
  // Doubles lose integers above 2^53; the layer must not.
  const std::uint64_t big = 18446744073709551615ull;  // 2^64 - 1
  EXPECT_EQ(Json::parse("18446744073709551615").as_uint(), big);
  EXPECT_EQ(Json(big).dump(), "18446744073709551615");
  const std::int64_t min64 = std::numeric_limits<std::int64_t>::min();
  EXPECT_EQ(Json::parse("-9223372036854775808").as_int(), min64);
}

TEST(Json, NumberCoercionIsCheckedNotSilent) {
  EXPECT_DOUBLE_EQ(Json::parse("3").as_double(), 3.0);   // int → double ok
  EXPECT_EQ(Json::parse("3").as_uint(), 3u);
  EXPECT_THROW(Json::parse("3.5").as_int(), JsonError);  // fractional → error
  EXPECT_THROW(Json::parse("-1").as_uint(), JsonError);  // negative → error
  EXPECT_THROW(Json::parse("\"5\"").as_int(), JsonError);
}

TEST(Json, ParsesNestedStructures) {
  const Json j = Json::parse(R"({"a": [1, {"b": true}, "x"], "c": {}})");
  ASSERT_TRUE(j.is_object());
  const Json::Array& a = j.at("a").as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a[0].as_int(), 1);
  EXPECT_EQ(a[1].at("b").as_bool(), true);
  EXPECT_EQ(a[2].as_string(), "x");
  EXPECT_TRUE(j.at("c").as_object().empty());
  EXPECT_EQ(j.find("missing"), nullptr);
  EXPECT_THROW(j.at("missing"), JsonError);
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(Json::parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(Json::parse(R"("Aé")").as_string(), "A\xc3\xa9");
  // Surrogate pair → 4-byte UTF-8.
  EXPECT_EQ(Json::parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");
  EXPECT_THROW(Json::parse(R"("\ud83d")"), JsonError);   // unpaired high
  EXPECT_THROW(Json::parse(R"("\ude00")"), JsonError);   // unpaired low
  EXPECT_THROW(Json::parse(R"("\q")"), JsonError);       // bad escape
  EXPECT_THROW(Json::parse("\"a\nb\""), JsonError);      // raw control char
}

TEST(Json, WriterEscapesAndReparses) {
  Json obj = Json::object();
  obj.set("k\"ey\n", Json(std::string("v\talue\\")));
  const Json back = Json::parse(obj.dump());
  EXPECT_EQ(back.at("k\"ey\n").as_string(), "v\talue\\");
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "  ", "{", "[", "\"abc", "{\"a\":}", "{\"a\" 1}", "{\"a\":1,}", "[1,]",
        "[1 2]", "01", "1.", ".5", "1e", "+3", "nul", "tru", "falsy", "{]", "--1",
        "\x01", "{\"a\":1}}", "[1]x", "1 2"}) {
    EXPECT_THROW(Json::parse(bad), JsonError) << "input: " << bad;
  }
}

TEST(Json, RejectsDuplicateKeys) {
  EXPECT_THROW(Json::parse(R"({"a": 1, "a": 2})"), JsonError);
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    Json::parse("{\n  \"a\": tru\n}");
    FAIL() << "should have thrown";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.line(), 2u);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Json, DeepNestingFailsCleanlyNotByStackOverflow) {
  const std::string deep(100000, '[');
  EXPECT_THROW(Json::parse(deep), JsonError);
  const std::string deep_obj = [] {
    std::string s;
    for (int i = 0; i < 5000; ++i) s += "{\"a\":";
    return s;
  }();
  EXPECT_THROW(Json::parse(deep_obj), JsonError);
}

// The satellite regression: a zero-wall campaign's runs_per_second is
// NaN/inf, and the old string-assembled report emitted literally "nan" —
// invalid JSON.  The shared writer must emit null for any non-finite
// double.
TEST(Json, NonFiniteDoublesRenderAsNull) {
  Json obj = Json::object();
  obj.set("a", std::numeric_limits<double>::quiet_NaN());
  obj.set("b", std::numeric_limits<double>::infinity());
  obj.set("c", -std::numeric_limits<double>::infinity());
  obj.set("fine", 1.5);
  const std::string text = obj.dump();
  EXPECT_EQ(text.find("nan"), std::string::npos);
  EXPECT_EQ(text.find("inf"), std::string::npos);
  const Json back = Json::parse(text);
  EXPECT_TRUE(back.at("a").is_null());
  EXPECT_TRUE(back.at("b").is_null());
  EXPECT_TRUE(back.at("c").is_null());
  EXPECT_DOUBLE_EQ(back.at("fine").as_double(), 1.5);
}

TEST(Json, DoublesRoundTripShortestForm) {
  for (double v : {0.1, 1.0 / 3.0, 1e-9, 12345.6789, -0.00025, 2.5e17,
                   std::nextafter(1.0, 2.0)}) {
    const Json back = Json::parse(Json(v).dump());
    EXPECT_EQ(back.as_double(), v);
  }
  // Integral doubles print in fixed form, not scientific.
  EXPECT_EQ(Json(10.0).dump(), "10");
  EXPECT_EQ(Json(200.0).dump(), "200");
  EXPECT_EQ(Json(0.1).dump(), "0.1");
}

TEST(Json, PrettyDumpIsStableAndReparses) {
  Json obj = Json::object();
  obj.set("a", 1);
  Json arr = Json::array();
  arr.push_back(true);
  arr.push_back(Json::object());
  obj.set("b", std::move(arr));
  const std::string pretty = obj.dump(2);
  EXPECT_NE(pretty.find("\"a\": 1"), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), obj);
  EXPECT_EQ(Json::parse(obj.dump()), obj);  // compact form too
}

TEST(Json, CanonicalDumpSortsKeysAndDropsWhitespace) {
  // Same value entered in two member orders → one canonical byte string.
  Json a = Json::object();
  a.set("zeta", 1).set("alpha", Json::array());
  Json b = Json::object();
  b.set("alpha", Json::array()).set("zeta", 1);
  EXPECT_EQ(a.dump_canonical(), b.dump_canonical());
  EXPECT_EQ(a.dump_canonical(), "{\"alpha\":[],\"zeta\":1}");

  Json nested = Json::object();
  Json inner = Json::object();
  inner.set("b", 2).set("a", 1);
  Json arr = Json::array();
  arr.push_back(std::move(inner));
  arr.push_back(true);
  nested.set("x", std::move(arr));
  EXPECT_EQ(nested.dump_canonical(), "{\"x\":[{\"a\":1,\"b\":2},true]}");

  // dump() is untouched: insertion order, its own spacing.
  EXPECT_EQ(a.dump(), "{\"zeta\": 1,\"alpha\": []}");
}

TEST(Json, CanonicalDumpIsParseStable) {
  // parse(canonical) re-canonicalizes to the same bytes (fixed point),
  // including shortest-round-trip doubles and exact big integers.
  Json obj = Json::object();
  obj.set("pi", 0.1 + 0.2);
  obj.set("big", 18446744073709551615ull);
  obj.set("neg", -7);
  obj.set("s", std::string("a\"b\n"));
  obj.set("null", Json());
  const std::string canon = obj.dump_canonical();
  EXPECT_EQ(Json::parse(canon).dump_canonical(), canon);
  // Whitespace and key order of the INPUT never reach the output.
  EXPECT_EQ(Json::parse("{ \"b\" : 1 ,\n \"a\" : 2 }").dump_canonical(),
            "{\"a\":2,\"b\":1}");
}

TEST(Json, SetReplacesExistingKeysInPlace) {
  Json obj = Json::object();
  obj.set("k", 1).set("l", 2).set("k", 3);
  ASSERT_EQ(obj.as_object().size(), 2u);
  EXPECT_EQ(obj.at("k").as_int(), 3);
  EXPECT_EQ(obj.as_object()[0].first, "k");  // insertion order preserved
}

TEST(JsonReader, StrictConsumptionRejectsUnknownKeys) {
  const Json j = Json::parse(R"({"known": 1, "typo": 2})");
  JsonReader r(j, "test");
  EXPECT_EQ(r.uinteger("known", 0), 1u);
  try {
    r.finish();
    FAIL() << "should have thrown";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("unknown key \"typo\""), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test"), std::string::npos);
  }
}

TEST(JsonReader, TypeErrorsNameThePath) {
  const Json j = Json::parse(R"({"p": "not-a-number"})");
  JsonReader r(j, "scenario.loss");
  try {
    r.number("p", 0.0);
    FAIL() << "should have thrown";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("scenario.loss.p"), std::string::npos);
  }
}

TEST(JsonReader, AbsentKeysFallBack) {
  const Json j = Json::parse("{}");
  JsonReader r(j, "t");
  EXPECT_EQ(r.number("x", 4.5), 4.5);
  EXPECT_EQ(r.boolean("y", true), true);
  EXPECT_EQ(r.string("z", "d"), "d");
  r.finish();  // nothing unconsumed
}

}  // namespace
}  // namespace ptecps::util
