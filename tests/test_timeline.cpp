// Tests for the trace query helpers and the ASCII timeline renderer.
#include <gtest/gtest.h>

#include "hybrid/automaton.hpp"
#include "hybrid/engine.hpp"
#include "hybrid/timeline.hpp"
#include "hybrid/trace.hpp"
#include "util/text.hpp"

namespace ptecps::hybrid {
namespace {

/// Safe --(dwell 2)--> Danger[risky] --(dwell 3)--> Safe (cycle).
Automaton make_blinker() {
  Automaton a("blinker");
  const LocId safe = a.add_location("SafeSide");
  const LocId danger = a.add_location("DangerSide", true);
  a.add_initial_location(safe);
  Edge in;
  in.src = safe;
  in.dst = danger;
  in.kind = TriggerKind::kTimed;
  in.dwell = 2.0;
  a.add_edge(std::move(in));
  Edge out;
  out.src = danger;
  out.dst = safe;
  out.kind = TriggerKind::kTimed;
  out.dwell = 3.0;
  a.add_edge(std::move(out));
  return a;
}

TEST(TraceQueries, LocationIntervalsReconstructed) {
  Engine engine({make_blinker()});
  engine.init();
  engine.run_until(11.0);  // transitions at 2, 5, 7, 10 (not the one at 12)
  const auto intervals = location_intervals(engine.trace(), 0, 11.0);
  // [0,2) safe, [2,5) danger, [5,7) safe, [7,10) danger, [10,11] safe.
  ASSERT_EQ(intervals.size(), 5u);
  EXPECT_DOUBLE_EQ(intervals[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(intervals[0].end, 2.0);
  EXPECT_DOUBLE_EQ(intervals[1].duration(), 3.0);
  EXPECT_DOUBLE_EQ(intervals[4].end, 11.0);
}

TEST(TraceQueries, RiskyIntervalsMergeContiguous) {
  Engine engine({make_blinker()});
  engine.init();
  engine.run_until(11.0);
  const auto risky =
      risky_intervals(engine.trace(), 0, engine.automaton(0), 11.0);
  ASSERT_EQ(risky.size(), 2u);
  EXPECT_DOUBLE_EQ(risky[0].begin, 2.0);
  EXPECT_DOUBLE_EQ(risky[0].end, 5.0);
  EXPECT_DOUBLE_EQ(risky[1].begin, 7.0);
}

TEST(Timeline, RendersRiskyBlocksAndRuler) {
  Engine engine({make_blinker()});
  engine.init();
  engine.run_until(10.0);
  TimelineOptions opt;
  opt.begin = 0.0;
  opt.end = 10.0;
  opt.seconds_per_column = 1.0;
  opt.label_width = 10;
  opt.mark_transitions = false;
  const std::string out = render_timeline(
      engine.trace(), {&engine.automaton(0)}, {0}, opt);
  // Row: columns 0..1 safe, 2..4 risky, 5..6 safe, 7..9 risky.
  const auto lines = util::split(out, '\n');
  ASSERT_GE(lines.size(), 2u);
  const std::string& row = lines[1];
  ASSERT_GE(row.size(), 10u + 10u);
  EXPECT_EQ(row.substr(10).substr(2, 3), "###");
  EXPECT_EQ(row[10 + 5], '.');
  EXPECT_EQ(row.substr(10).substr(7, 3), "###");
}

TEST(Timeline, RejectsBadOptions) {
  Engine engine({make_blinker()});
  engine.init();
  engine.run_until(1.0);
  TimelineOptions opt;
  opt.seconds_per_column = 0.0;
  EXPECT_THROW(
      render_timeline(engine.trace(), {&engine.automaton(0)}, {0}, opt),
      std::invalid_argument);
}

TEST(Trace, FormatMentionsLocationsAndTimes) {
  Engine engine({make_blinker()});
  engine.init();
  engine.run_until(3.0);
  const std::string text =
      engine.trace().format({&engine.automaton(0)}, 0.0, 3.0);
  EXPECT_NE(text.find("blinker"), std::string::npos);
  EXPECT_NE(text.find("SafeSide -> DangerSide"), std::string::npos);
  EXPECT_NE(text.find("[t=2.000]"), std::string::npos);
}

TEST(Trace, SampleSeriesFiltersByName) {
  Automaton a("sampled");
  a.add_var("x", 0.0);
  a.add_var("y", 0.0);
  const LocId s = a.add_location("s");
  a.set_flow(s, Flow{}.rate(0, 1.0).rate(1, 2.0));
  a.add_initial_location(s);
  Engine engine({std::move(a)});
  engine.init();
  engine.add_sampler(0, 0, 1.0);
  engine.add_sampler(0, 1, 1.0);
  engine.run_until(3.0);
  const auto xs = sample_series(engine.trace(), 0, "x");
  const auto ys = sample_series(engine.trace(), 0, "y");
  ASSERT_GE(xs.size(), 3u);
  EXPECT_NEAR(xs[2].value, 2.0, 1e-9);
  EXPECT_NEAR(ys[2].value, 4.0, 1e-9);
}

}  // namespace
}  // namespace ptecps::hybrid
