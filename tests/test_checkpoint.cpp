// Warm-resume checkpoint tests: the format round trip, the dominance
// rule, and the acceptance property — a run resumed from a persisted
// out-of-budget boundary is bit-identical (verdict, counterexample,
// explored/stored/transition counts) to a cold run with the same larger
// budget, across thread counts and over randomized synthesized models.
#include <gtest/gtest.h>

#include <algorithm>

#include "campaign/scenario.hpp"
#include "scenarios/builder.hpp"
#include "sim/random.hpp"
#include "util/binio.hpp"
#include "util/text.hpp"
#include "verify/checkpoint.hpp"
#include "verify/model.hpp"

namespace ptecps::verify {
namespace {

CompiledModel synthesized_model(std::uint64_t seed, bool breakable) {
  sim::Rng rng(seed);
  scenarios::SynthesizeOptions options;
  options.n_remotes = 2 + static_cast<std::size_t>(rng.uniform_int(2));
  options.breakable = breakable;
  const campaign::ScenarioSpec spec = scenarios::synthesize(rng, options);
  return compile_model(spec.verify_input());
}

VerifyOptions small_budget(std::size_t max_states) {
  VerifyOptions opt;
  opt.max_losses = 1;
  opt.max_injections = 1;
  opt.max_states = max_states;
  return opt;
}

/// Everything the acceptance bar compares, as one string.
std::string fingerprint(const VerifyResult& r) {
  std::string out = util::cat(verify_status_str(r.status), ";", r.states_explored, ";",
                              r.states_stored, ";", r.transitions);
  if (r.counterexample.has_value())
    out += ";" + r.counterexample->to_json().dump_canonical();
  return out;
}

TEST(Checkpoint, HeaderRoundTripAndRejection) {
  Checkpoint ck;
  ck.max_losses = 3;
  ck.max_injections = 1;
  ck.max_input_changes = 2;
  ck.max_states = 5000;
  ck.check_embedding = false;
  ck.por = false;
  ck.clocks = 17;
  ck.explored = 4321;
  ck.transitions = 98765;
  ck.state = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> bytes = ck.serialize();
  const Checkpoint back = Checkpoint::deserialize(bytes.data(), bytes.size());
  EXPECT_EQ(back.max_losses, ck.max_losses);
  EXPECT_EQ(back.max_injections, ck.max_injections);
  EXPECT_EQ(back.max_input_changes, ck.max_input_changes);
  EXPECT_EQ(back.max_states, ck.max_states);
  EXPECT_EQ(back.check_dwell_bound, ck.check_dwell_bound);
  EXPECT_EQ(back.check_embedding, ck.check_embedding);
  EXPECT_EQ(back.por, ck.por);
  EXPECT_EQ(back.subsumption, ck.subsumption);
  EXPECT_EQ(back.clocks, ck.clocks);
  EXPECT_EQ(back.explored, ck.explored);
  EXPECT_EQ(back.transitions, ck.transitions);
  EXPECT_EQ(back.state, ck.state);

  // Bad magic, truncation, and version skew all fail loudly.
  std::vector<std::uint8_t> bad = bytes;
  bad[0] ^= 0xFF;
  EXPECT_THROW(Checkpoint::deserialize(bad.data(), bad.size()), util::BinError);
  EXPECT_THROW(Checkpoint::deserialize(bytes.data(), bytes.size() - 3), util::BinError);
  bad = bytes;
  bad[4] = 99;  // format field
  EXPECT_THROW(Checkpoint::deserialize(bad.data(), bad.size()), util::BinError);
}

TEST(Checkpoint, DominanceRule) {
  Checkpoint ck;
  ck.max_losses = 1;
  ck.max_injections = 1;
  ck.max_input_changes = 1;
  ck.max_states = 100;
  ck.clocks = 10;
  ck.state = {0};

  VerifyOptions opt;
  opt.max_losses = 1;
  opt.max_injections = 1;
  opt.max_input_changes = 1;
  opt.max_states = 500;
  EXPECT_TRUE(ck.can_resume(opt, 10));

  // Equal or smaller state budget: no strict dominance.
  opt.max_states = 100;
  EXPECT_FALSE(ck.can_resume(opt, 10));
  opt.max_states = 50;
  EXPECT_FALSE(ck.can_resume(opt, 10));
  opt.max_states = 500;

  // A grown adversary budget is NOT resumable (passed states would have
  // new successors); neither is any semantic-flag or model mismatch.
  opt.max_losses = 2;
  EXPECT_FALSE(ck.can_resume(opt, 10));
  opt.max_losses = 1;
  opt.max_injections = 0;
  EXPECT_FALSE(ck.can_resume(opt, 10));
  opt.max_injections = 1;
  opt.por = false;
  EXPECT_FALSE(ck.can_resume(opt, 10));
  opt.por = true;
  EXPECT_FALSE(ck.can_resume(opt, 11));
  EXPECT_TRUE(ck.can_resume(opt, 10));

  // An empty-state header (a final verdict's capture) never resumes.
  ck.state.clear();
  EXPECT_FALSE(ck.can_resume(opt, 10));
}

TEST(Checkpoint, OutOfBudgetRunCapturesResumableState) {
  const CompiledModel model = synthesized_model(7, false);
  Checkpoint ck;
  const VerifyOptions opt = small_budget(40);
  const VerifyResult r = verify_pte(model, opt, nullptr, &ck);
  ASSERT_EQ(r.status, VerifyStatus::kOutOfBudget);
  EXPECT_FALSE(r.resumed);
  EXPECT_FALSE(ck.empty());
  EXPECT_EQ(ck.clocks, model.clocks.count);
  EXPECT_LE(ck.explored, opt.max_states + r.states_stored);
  VerifyOptions bigger = opt;
  bigger.max_states = 100000;
  EXPECT_TRUE(ck.can_resume(bigger, model.clocks.count));
}

TEST(Checkpoint, ProvedRunCapturesNothing) {
  const CompiledModel model = synthesized_model(7, false);
  Checkpoint ck;
  const VerifyResult r = verify_pte(model, small_budget(1'000'000), nullptr, &ck);
  ASSERT_EQ(r.status, VerifyStatus::kProved);
  EXPECT_TRUE(ck.empty());
}

// The acceptance property: resumed == cold, bit for bit, over randomized
// synthesized models (proved and violating), several budget staircases,
// and different thread counts on each side of the resume.
TEST(Checkpoint, ResumeBitIdenticalToColdRun) {
  for (const std::uint64_t seed : {11u, 23u, 42u, 57u}) {
    for (const bool breakable : {false, true}) {
      const CompiledModel model = synthesized_model(seed, breakable);

      VerifyOptions big = small_budget(200'000);
      const VerifyResult cold = verify_pte(model, big);

      VerifyOptions small = small_budget(30);
      small.threads = 2;  // capture on 2 threads, resume on 1 and 2
      Checkpoint ck;
      const VerifyResult first = verify_pte(model, small, nullptr, &ck);
      if (first.status != VerifyStatus::kOutOfBudget) {
        // Model too small to truncate at 30 states; nothing to resume.
        EXPECT_TRUE(ck.empty());
        continue;
      }
      ASSERT_FALSE(ck.empty()) << "seed " << seed;

      for (const std::size_t resume_threads : {1u, 2u}) {
        VerifyOptions opts = big;
        opts.threads = resume_threads;
        const VerifyResult warm = verify_pte(model, opts, &ck, nullptr);
        EXPECT_TRUE(warm.resumed) << "seed " << seed;
        EXPECT_EQ(fingerprint(warm), fingerprint(cold))
            << "seed " << seed << " breakable " << breakable << " threads "
            << resume_threads;
        // Warm resume re-explores only the delta beyond the boundary.
        EXPECT_GE(warm.states_explored, ck.explored);
      }
    }
  }
}

TEST(Checkpoint, StaircaseResumeMatchesCold) {
  const CompiledModel model = synthesized_model(99, false);
  const VerifyResult cold = verify_pte(model, small_budget(200'000));

  Checkpoint ck;
  VerifyResult last = verify_pte(model, small_budget(25), nullptr, &ck);
  ASSERT_EQ(last.status, VerifyStatus::kOutOfBudget);
  std::size_t budget = 25;
  int resumes = 0;
  while (last.status == VerifyStatus::kOutOfBudget && budget < 200'000) {
    budget *= 8;
    Checkpoint next;
    VerifyOptions opt = small_budget(std::min<std::size_t>(budget, 200'000));
    last = verify_pte(model, opt, &ck, &next);
    if (last.resumed) ++resumes;
    ck = std::move(next);
  }
  EXPECT_GE(resumes, 1);
  EXPECT_EQ(fingerprint(last), fingerprint(cold));
}

TEST(Checkpoint, CorruptStateFallsBackToColdRun) {
  const CompiledModel model = synthesized_model(7, false);
  Checkpoint ck;
  ASSERT_EQ(verify_pte(model, small_budget(40), nullptr, &ck).status,
            VerifyStatus::kOutOfBudget);
  ASSERT_FALSE(ck.empty());

  const VerifyResult cold = verify_pte(model, small_budget(200'000));

  // Truncate the state bytes: restore throws internally, the run falls
  // back cold and still returns the right answer.
  Checkpoint broken = ck;
  broken.state.resize(broken.state.size() / 2);
  VerifyOptions big = small_budget(200'000);
  const VerifyResult r = verify_pte(model, big, &broken, nullptr);
  EXPECT_FALSE(r.resumed);
  EXPECT_EQ(fingerprint(r), fingerprint(cold));
}

}  // namespace
}  // namespace ptecps::verify
