// The scenario library: builder lowering, the named registry, the
// prover ⇄ sampler cross-validation layer, scenarios::synthesize(), and
// the PR-4 bugfix regressions (dropped VerifySpec::delivery_min).
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "attack/attacker.hpp"
#include "campaign/context.hpp"
#include "campaign/runner.hpp"
#include "core/constraints.hpp"
#include "scenarios/builder.hpp"
#include "scenarios/crossval.hpp"
#include "scenarios/registry.hpp"
#include "sim/random.hpp"
#include "util/text.hpp"

namespace ptecps::scenarios {
namespace {

// ---------------------------------------------------------------------------
// Regression: to_verify_input delivery-window derivation
// ---------------------------------------------------------------------------

TEST(VerifyInputDeliveryWindow, ExplicitMinSurvivesAChannelDerivedMax) {
  // The seed bug: an explicit delivery_min was silently discarded
  // whenever delivery_max was left to the channel, so the prover checked
  // an adversary that could deliver faster than the deployment's floor.
  campaign::ScenarioSpec spec;
  spec.mode = campaign::RunMode::kVerify;
  spec.channel = net::ChannelConfig{0.005, 0.0, 0.0, 0.5};
  spec.verify.delivery_min = 0.2;
  spec.verify.delivery_max = 0.0;  // derive from the channel
  const verify::VerifyInput input = spec.verify_input();
  EXPECT_DOUBLE_EQ(input.delivery_min, 0.2);
  EXPECT_DOUBLE_EQ(input.delivery_max, 0.5);  // acceptance window
}

TEST(VerifyInputDeliveryWindow, BothBoundsDefaultToTheChannel) {
  campaign::ScenarioSpec spec;
  spec.mode = campaign::RunMode::kVerify;
  spec.channel = net::ChannelConfig{0.01, 0.02, 0.0, 0.0};  // no acceptance window
  const verify::VerifyInput input = spec.verify_input();
  EXPECT_DOUBLE_EQ(input.delivery_min, 0.01);
  EXPECT_DOUBLE_EQ(input.delivery_max, 0.03);  // delay + jitter
}

TEST(VerifyInputDeliveryWindow, ExplicitBoundsAreKept) {
  campaign::ScenarioSpec spec;
  spec.mode = campaign::RunMode::kVerify;
  spec.verify.delivery_min = 0.1;
  spec.verify.delivery_max = 0.4;
  const verify::VerifyInput input = spec.verify_input();
  EXPECT_DOUBLE_EQ(input.delivery_min, 0.1);
  EXPECT_DOUBLE_EQ(input.delivery_max, 0.4);
}

TEST(VerifyInputDeliveryWindow, ExplicitZeroFloorIsNotDerivedUp) {
  // delivery_min = 0 is the instant-delivery adversary, not "unset" —
  // the unset sentinel is negative.  Deriving it up to channel.delay
  // would weaken the checked adversary.
  campaign::ScenarioSpec spec;
  spec.mode = campaign::RunMode::kVerify;
  spec.channel = net::ChannelConfig{0.005, 0.0, 0.0, 0.5};
  spec.verify.delivery_min = 0.0;
  spec.verify.delivery_max = 0.4;
  const verify::VerifyInput input = spec.verify_input();
  EXPECT_DOUBLE_EQ(input.delivery_min, 0.0);
  EXPECT_DOUBLE_EQ(input.delivery_max, 0.4);
}

TEST(VerifyInputDeliveryWindow, EmptyWindowThrowsInsteadOfProceeding) {
  campaign::ScenarioSpec spec;
  spec.mode = campaign::RunMode::kVerify;
  spec.channel = net::ChannelConfig{0.005, 0.0, 0.0, 0.5};
  spec.verify.delivery_min = 0.7;  // above the derived max of 0.5
  EXPECT_THROW(spec.verify_input(), std::invalid_argument);
  spec.verify.delivery_min = 0.4;
  spec.verify.delivery_max = 0.2;  // explicitly inverted
  EXPECT_THROW(spec.verify_input(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

TEST(ScenarioBuilder, StimulusScriptDrivesSessions) {
  ScenarioParams params;
  params.name = "scripted";
  params.mode = campaign::RunMode::kMonteCarlo;
  params.script.period = 45.0;
  params.script.phase = 15.0;
  params.script.on_for = 25.0;
  params.horizon = 120.0;
  params.seed_count = 1;
  const campaign::ScenarioSpec spec = build(params);
  ASSERT_TRUE(spec.drive != nullptr);

  campaign::SimulationContext ctx(spec, 1);
  const campaign::RunResult r = ctx.execute();
  EXPECT_GE(r.session.sessions, 1u);      // requests actually reached the system
  EXPECT_GT(r.session.episodes[2], 0u);   // the initializer went risky
  EXPECT_EQ(r.violations, 0u);
}

TEST(ScenarioBuilder, EmptyScriptLeavesDefaultDrive) {
  ScenarioParams params;
  params.mode = campaign::RunMode::kMonteCarlo;
  const campaign::ScenarioSpec spec = build(params);
  EXPECT_TRUE(spec.drive == nullptr);
}

TEST(ScenarioBuilder, ActionBeyondHorizonThrows) {
  ScenarioParams params;
  params.horizon = 50.0;
  params.script.actions = {Action::inject(60.0, 2, "evt.x")};
  EXPECT_THROW(build(params), std::invalid_argument);
}

TEST(ScenarioBuilder, ActionEntityOutOfRangeThrows) {
  ScenarioParams params;  // laser config: N = 2
  params.script.actions = {Action::inject(10.0, 5, "evt.x")};
  EXPECT_THROW(build(params), std::invalid_argument);
}

TEST(ScenarioBuilder, ChainedBridgeCompoundsLossAndDelayPerHop) {
  ScenarioParams params;
  params.name = "chained";
  params.mode = campaign::RunMode::kMonteCarlo;
  params.topology = Topology::kChainedBridge;
  params.relay_loss = 0.05;
  params.attacker = attack::AttackerModel::bernoulli(0.1);
  params.channel.delay = 0.01;
  params.seed_count = 1;
  const campaign::ScenarioSpec spec = build(params);
  ASSERT_TRUE(spec.configure_links != nullptr);

  campaign::SimulationContext ctx(spec, 1);
  // Remote 1 is one hop out: just the end-to-end model.  Remote 2 is two
  // hops out: the end-to-end model plus one relay draw.
  EXPECT_EQ(ctx.network().uplink(1).loss_model().describe(), "bernoulli(p=0.1)");
  const std::string far = ctx.network().uplink(2).loss_model().describe();
  EXPECT_TRUE(far.find("compound(") == 0) << far;
  EXPECT_TRUE(far.find("bernoulli(p=0.05)") != std::string::npos) << far;
}

TEST(ScenarioBuilder, ChainedBridgeSetsExplicitDeliveryMin) {
  ScenarioParams params;
  params.topology = Topology::kChainedBridge;
  params.channel.delay = 0.01;
  const campaign::ScenarioSpec spec = build(params);
  EXPECT_DOUBLE_EQ(spec.verify.delivery_min, 0.01);
  const verify::VerifyInput input = spec.verify_input();
  EXPECT_DOUBLE_EQ(input.delivery_min, 0.01);
  EXPECT_DOUBLE_EQ(input.delivery_max, 0.5);
}

TEST(ScenarioBuilder, ChainedBridgeWithoutAcceptanceWindowCoversTheWorstPath) {
  // Without an acceptance window the channel-derived max would be the
  // single-hop delay + jitter — the prover would miss the slower
  // multi-hop deliveries the simulator really performs (an unsound
  // proof).  The builder must pin the max to the worst path.
  ScenarioParams params;  // laser config: N = 2 -> worst path 2 hops
  params.topology = Topology::kChainedBridge;
  params.channel = net::ChannelConfig{0.01, 0.005, 0.0, 0.0};
  const campaign::ScenarioSpec spec = build(params);
  const verify::VerifyInput input = spec.verify_input();
  EXPECT_DOUBLE_EQ(input.delivery_min, 0.01);
  EXPECT_DOUBLE_EQ(input.delivery_max, 0.025);  // 2 * delay + jitter
}

TEST(ScenarioBuilder, ChainedBridgeRejectsPathsOutrunningTheAcceptanceWindow) {
  ScenarioParams params;
  params.topology = Topology::kChainedBridge;
  params.channel.delay = 0.3;            // 2 hops -> 0.6 s worst path
  params.channel.acceptance_window = 0.5;
  EXPECT_THROW(build(params), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Registry-wide cross-validation (the PR-4 acceptance criterion)
// ---------------------------------------------------------------------------

TEST(ScenarioRegistry, HasAtLeastSixUniquelyNamedScenarios) {
  const auto& entries = registry();
  EXPECT_GE(entries.size(), 6u);
  std::set<std::string> names;
  for (const auto& e : entries) {
    EXPECT_TRUE(names.insert(e.name).second) << "duplicate scenario name " << e.name;
    EXPECT_NE(e.summary, "");
    ASSERT_NE(e.make, nullptr);
    EXPECT_NE(find_scenario(e.name), nullptr);
  }
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
}

TEST(ScenarioRegistry, RejectsEntriesThatOptOutOfVerification) {
  // Every entry declares an expected prover verdict; a Monte-Carlo-only
  // factory would make that untestable, so build_scenario refuses it.
  RegistryEntry entry;
  entry.name = "mc-only";
  entry.make = +[] {
    ScenarioParams p;
    p.mode = campaign::RunMode::kMonteCarlo;
    return p;
  };
  EXPECT_THROW(build_scenario(entry), std::invalid_argument);
}

TEST(ScenarioRegistry, EveryScenarioCrossValidatesInBothModes) {
  const RegistryTuning tuning = RegistryTuning::smoke();
  const std::vector<campaign::ScenarioSpec> specs = build_all(tuning);
  for (const auto& spec : specs) EXPECT_EQ(spec.mode, campaign::RunMode::kBoth);

  const campaign::CampaignReport report = campaign::CampaignRunner().run(specs);
  EXPECT_TRUE(report.ok()) << report.summary();

  const CrossValidationReport crossval = cross_validate(report);
  ASSERT_EQ(crossval.checks.size(), registry().size());
  EXPECT_TRUE(crossval.ok()) << crossval.summary();

  for (std::size_t i = 0; i < registry().size(); ++i) {
    const auto& entry = registry()[i];
    const auto& outcome = report.scenarios[i];
    ASSERT_TRUE(outcome.verification.has_value()) << entry.name;
    EXPECT_EQ(outcome.verification->status, entry.expected) << entry.name;
    if (entry.expected == verify::VerifyStatus::kViolation) {
      // The broken scenarios exercise the whole counterexample pipeline:
      // found, concretized, and reproduced in the engine.
      ASSERT_TRUE(outcome.verification->counterexample.has_value()) << entry.name;
      EXPECT_TRUE(outcome.verification->replay_attempted) << entry.name;
      EXPECT_TRUE(outcome.verification->replay_reproduced) << entry.name;
      // ... and the sampler sees the same problem on ordinary seeds.
      EXPECT_GT(outcome.total_violations, 0u) << entry.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-validation verdict rules
// ---------------------------------------------------------------------------

TEST(CrossValidation, FlagsSampledViolationsInAProvedScenario) {
  campaign::CampaignReport report;
  report.scenarios.resize(1);
  campaign::ScenarioOutcome& s = report.scenarios[0];
  s.name = "fake";
  s.verification.emplace();
  s.verification->status = verify::VerifyStatus::kProved;
  s.runs.resize(2);
  s.runs[1].violations = 3;

  const CrossValidationReport crossval = cross_validate(report);
  ASSERT_EQ(crossval.checks.size(), 1u);
  EXPECT_FALSE(crossval.checks[0].consistent);
  EXPECT_FALSE(crossval.ok());
  EXPECT_EQ(crossval.checks[0].sampled_violations, 3u);
  EXPECT_EQ(crossval.checks[0].violating_runs, 1u);
}

TEST(CrossValidation, ProverOnlyViolationIsConsistent) {
  campaign::CampaignReport report;
  report.scenarios.resize(1);
  campaign::ScenarioOutcome& s = report.scenarios[0];
  s.name = "fake";
  s.verification.emplace();
  s.verification->status = verify::VerifyStatus::kViolation;
  s.verification->replay_attempted = true;
  s.verification->replay_reproduced = true;
  s.runs.resize(2);  // sampled clean

  // A kVerify-mode scenario (no Monte-Carlo runs at all) is likewise
  // consistent, but must not claim the sampler corroborated anything.
  report.scenarios.resize(2);
  campaign::ScenarioOutcome& verify_only = report.scenarios[1];
  verify_only.name = "verify-only";
  verify_only.verification.emplace();
  verify_only.verification->status = verify::VerifyStatus::kViolation;

  const CrossValidationReport crossval = cross_validate(report);
  EXPECT_TRUE(crossval.ok()) << crossval.summary();
  ASSERT_EQ(crossval.checks.size(), 2u);
  EXPECT_NE(crossval.checks[1].detail.find("no Monte-Carlo runs"), std::string::npos)
      << crossval.checks[1].detail;
}

TEST(CrossValidation, FailedReplayAndOutOfBudgetAreLoud) {
  campaign::CampaignReport report;
  report.scenarios.resize(2);
  report.scenarios[0].name = "no-replay";
  report.scenarios[0].verification.emplace();
  report.scenarios[0].verification->status = verify::VerifyStatus::kViolation;
  report.scenarios[0].verification->replay_attempted = true;
  report.scenarios[0].verification->replay_reproduced = false;
  report.scenarios[1].name = "oob";
  report.scenarios[1].verification.emplace();
  report.scenarios[1].verification->status = verify::VerifyStatus::kOutOfBudget;

  const CrossValidationReport crossval = cross_validate(report);
  ASSERT_EQ(crossval.checks.size(), 2u);
  EXPECT_FALSE(crossval.checks[0].consistent);
  EXPECT_FALSE(crossval.checks[1].consistent);
}

TEST(CrossValidation, MonteCarloOnlyScenariosAreSkipped) {
  campaign::CampaignReport report;
  report.scenarios.resize(1);
  report.scenarios[0].name = "mc-only";  // no verification outcome
  const CrossValidationReport crossval = cross_validate(report);
  EXPECT_TRUE(crossval.checks.empty());
  EXPECT_TRUE(crossval.ok());
}

// ---------------------------------------------------------------------------
// scenarios::synthesize — the randomized-model generator, promoted from
// the zone-engine property tests into the reusable fuzz entry point
// ---------------------------------------------------------------------------

TEST(CrossValidation, EveryAttackerFamilyAgreesAcrossBothLowerings) {
  // One deployment, every attacker family: the stochastic lowering (what
  // the sampler draws losses from) and the prover lowering (ammunition)
  // must never produce contradictory verdicts.  The base deployment is
  // the laser case study, proved even under a 4-loss adversary, so the
  // sampler observing a violation under ANY family would be a lowering
  // bug, not an attack.
  const attack::AttackerModel families[] = {
      attack::AttackerModel::none(),
      attack::AttackerModel::bernoulli(0.3),
      attack::AttackerModel::gilbert_elliott(0.05, 0.4, 0.02, 0.8),
      attack::AttackerModel::interference(2.0, 0.5, 0.9, 0.02),
      attack::AttackerModel::scripted({false, true, false, true}),
      attack::AttackerModel::sustained_jammer(0.8),
      attack::AttackerModel::reactive_jammer(0.8, 1.0, 0.9),
  };
  std::vector<campaign::ScenarioSpec> specs;
  for (const attack::AttackerModel& family : families) {
    const RegistryEntry* entry = find_scenario("laser-tracheotomy");
    ASSERT_NE(entry, nullptr);
    ScenarioParams p = params_for(*entry);
    p.name = util::cat("laser-", attack::attacker_kind_str(family.kind));
    p.attacker = family;
    p.attacker.with_intensity(0.5).with_budget(4);
    p.seed_count = 2;
    p.horizon = 100.0;
    apply_tuning(p, RegistryTuning::smoke());
    specs.push_back(build(p));
    // A budgeted attacker owns the prover's ammunition: floor(0.5*4).
    // The benign kind keeps the scenario's own (smoke-capped) bound.
    if (family.kind != attack::AttackerModel::Kind::kNone)
      EXPECT_EQ(specs.back().verify.max_losses, 2u) << p.name;
  }

  const campaign::CampaignReport report = campaign::CampaignRunner().run(specs);
  EXPECT_TRUE(report.ok()) << report.summary();
  const CrossValidationReport crossval = cross_validate(report);
  ASSERT_EQ(crossval.checks.size(), specs.size());
  EXPECT_TRUE(crossval.ok()) << crossval.summary();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(report.scenarios[i].verification.has_value()) << specs[i].name;
    EXPECT_EQ(report.scenarios[i].verification->status, verify::VerifyStatus::kProved)
        << specs[i].name;
    EXPECT_EQ(report.scenarios[i].total_violations, 0u) << specs[i].name;
  }
}

TEST(Synthesize, ConfigsAreAlwaysTheorem1Consistent) {
  sim::Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    SynthesizeOptions options;
    options.n_remotes = 2 + rng.uniform_int(2);  // N in {2, 3}
    const campaign::ScenarioSpec spec = synthesize(rng, options);
    EXPECT_TRUE(core::check_theorem1(spec.config).ok)
        << core::check_theorem1(spec.config).message();
    EXPECT_EQ(spec.config.n_remotes, options.n_remotes);
  }
}

TEST(Synthesize, FuzzCampaignCrossValidates) {
  // The fuzz loop the generator exists for: random deployments, half of
  // them judged against a deliberately lowered dwell ceiling, every one
  // swept through both modes and cross-checked.
  sim::Rng rng(21);
  std::vector<campaign::ScenarioSpec> specs;
  std::vector<bool> broken;
  for (int i = 0; i < 6; ++i) {
    SynthesizeOptions options;
    options.breakable = true;
    options.mode = campaign::RunMode::kBoth;
    options.seed_count = 2;
    campaign::ScenarioSpec spec = synthesize(rng, options);
    spec.name += util::cat("-", i);
    spec.verify.max_losses = 1;
    spec.verify.max_injections = 1;
    broken.push_back(spec.dwell_bound > 0.0);
    specs.push_back(std::move(spec));
  }

  const campaign::CampaignReport report = campaign::CampaignRunner().run(specs);
  EXPECT_TRUE(report.ok()) << report.summary();
  const CrossValidationReport crossval = cross_validate(report);
  EXPECT_TRUE(crossval.ok()) << crossval.summary();

  std::size_t violations_proved = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& v = report.scenarios[i].verification;
    ASSERT_TRUE(v.has_value());
    if (broken[i]) {
      // A ceiling below ξ1's lease is violated without a single loss.
      EXPECT_EQ(v->status, verify::VerifyStatus::kViolation) << specs[i].name;
      ++violations_proved;
    } else {
      EXPECT_EQ(v->status, verify::VerifyStatus::kProved) << specs[i].name;
    }
  }
  // The seed mix must exercise both sides of the generator.
  EXPECT_GE(violations_proved, 1u);
  EXPECT_LT(violations_proved, specs.size());
}

TEST(Synthesize, SingleRemoteDeploymentsAreRejected) {
  // Rule 2's embedding order quantifies over entity pairs, so an N == 1
  // "deployment" has no PTE property to state — the generator refuses
  // rather than emitting a vacuous model the fuzzer would waste execs on.
  sim::Rng rng(31);
  SynthesizeOptions options;
  options.n_remotes = 1;
  EXPECT_THROW((void)synthesize_params(rng, options), std::invalid_argument);
  try {
    (void)synthesize_params(rng, options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("N >= 2"), std::string::npos) << e.what();
  }
}

TEST(Synthesize, UnbreakableDrawsNeverCarryADwellCeiling) {
  // breakable == false must be a hard guarantee, not a probability: the
  // fuzz smoke lane in CI relies on it to get a finding-free campaign.
  sim::Rng rng(37);
  for (int i = 0; i < 50; ++i) {
    SynthesizeOptions options;
    options.n_remotes = 2 + rng.uniform_int(2);
    options.breakable = false;
    const ScenarioParams p = synthesize_params(rng, options);
    EXPECT_EQ(p.dwell_bound, 0.0) << p.name;
    EXPECT_EQ(p.name.find("-broken"), std::string::npos) << p.name;
  }
}

TEST(Synthesize, TrafficDrawsReachEveryStochasticAttackerFamily) {
  // with_traffic draws the attacker from the five stochastic lowerings
  // (scripted verdict lists and the benign channel are deliberate
  // non-draws — they carry no randomness worth sweeping).  All five must
  // actually come up, or a whole lowering silently drops out of the
  // cross-validation sweeps and the fuzzing grammar's seed distribution.
  sim::Rng rng(41);
  std::set<attack::AttackerModel::Kind> seen;
  for (int i = 0; i < 200 && seen.size() < 5; ++i) {
    SynthesizeOptions options;
    options.mode = campaign::RunMode::kBoth;  // kVerify skips traffic
    options.with_traffic = true;
    const ScenarioParams p = synthesize_params(rng, options);
    EXPECT_NE(p.attacker.kind, attack::AttackerModel::Kind::kNone);
    EXPECT_NE(p.attacker.kind, attack::AttackerModel::Kind::kScripted);
    EXPECT_FALSE(p.script.empty()) << "traffic draws carry a stimulus script";
    seen.insert(p.attacker.kind);
  }
  EXPECT_EQ(seen.size(), 5u);
}

}  // namespace
}  // namespace ptecps::scenarios
