// Unit tests for the guard/flow/reset expression layer (§II-A items
// 3, 4, 6, 7) including the exact crossing-time computation the engine
// relies on for urgent condition edges.
#include <gtest/gtest.h>

#include <limits>

#include "hybrid/expr.hpp"
#include "hybrid/flow.hpp"
#include "hybrid/label.hpp"
#include "hybrid/reset.hpp"

namespace ptecps::hybrid {
namespace {

TEST(LinearExpr, EvalAndTermMerging) {
  LinearExpr e = LinearExpr::var(0, 2.0);
  e.add_term(1, -1.0).add_constant(3.0);
  e.add_term(0, 1.0);  // merges into coefficient 3
  EXPECT_DOUBLE_EQ(e.eval({2.0, 5.0}), 3.0 * 2.0 - 5.0 + 3.0);
  EXPECT_EQ(e.max_var(), 1u);
}

TEST(LinearExpr, RateUnderConstantFlows) {
  LinearExpr e = LinearExpr::var(0, 2.0);
  e.add_term(1, -3.0);
  EXPECT_DOUBLE_EQ(e.rate({1.0, 0.5}), 2.0 - 1.5);
}

TEST(LinearExpr, ShiftedRemapsVariables) {
  LinearExpr e = LinearExpr::var(0).add_constant(1.0);
  const LinearExpr s = e.shifted(5);
  EXPECT_DOUBLE_EQ(s.eval({0, 0, 0, 0, 0, 7.0}), 8.0);
}

TEST(LinearConstraint, MarginSigns) {
  // x0 - 3 >= 0
  const LinearConstraint ge_c = atleast(0, 3.0);
  EXPECT_TRUE(ge_c.eval({4.0}));
  EXPECT_FALSE(ge_c.eval({2.0}));
  EXPECT_DOUBLE_EQ(ge_c.margin({5.0}), 2.0);
  // x0 - 3 <= 0
  const LinearConstraint le_c = atmost(0, 3.0);
  EXPECT_TRUE(le_c.eval({2.0}));
  EXPECT_DOUBLE_EQ(le_c.margin({2.0}), 1.0);
  EXPECT_DOUBLE_EQ(le_c.margin({5.0}), -2.0);
}

TEST(LinearConstraint, GeLeBuilders) {
  // 2*x0 >= x1 + 1  <=>  2*x0 - x1 - 1 >= 0
  const LinearConstraint c = ge(LinearExpr::var(0, 2.0), LinearExpr::var(1).add_constant(1.0));
  EXPECT_TRUE(c.eval({1.0, 1.0}));
  EXPECT_FALSE(c.eval({0.5, 1.0}));
}

TEST(Guard, EmptyGuardAlwaysTrue) {
  const Guard g;
  EXPECT_TRUE(g.always_true());
  EXPECT_TRUE(g.eval({}, 0.0));
  EXPECT_EQ(g.margin({}), std::numeric_limits<double>::infinity());
}

TEST(Guard, MinDwellGating) {
  Guard g;
  g.min_dwell(2.0);
  EXPECT_FALSE(g.eval({}, 1.0));
  EXPECT_TRUE(g.eval({}, 2.0));
}

TEST(Guard, ConjunctionSemantics) {
  const Guard g{std::vector<LinearConstraint>{atleast(0, 1.0), atmost(0, 3.0)}};
  EXPECT_TRUE(g.eval({2.0}, 0.0));
  EXPECT_FALSE(g.eval({0.0}, 0.0));
  EXPECT_FALSE(g.eval({4.0}, 0.0));
  EXPECT_DOUBLE_EQ(g.margin({2.0}), 1.0);  // min of the two margins
}

TEST(Guard, TimeToSatisfyExact) {
  // x0 starts at 0, rate 2: x0 >= 5 satisfied at t = 2.5.
  const Guard g{atleast(0, 5.0)};
  EXPECT_DOUBLE_EQ(g.time_to_satisfy({0.0}, {2.0}), 2.5);
  // Already satisfied.
  EXPECT_DOUBLE_EQ(g.time_to_satisfy({6.0}, {2.0}), 0.0);
  // Wrong direction: never.
  EXPECT_TRUE(std::isinf(g.time_to_satisfy({0.0}, {-1.0})));
}

TEST(Guard, TimeToSatisfyConjunctionNeedsSimultaneity) {
  // 1 <= x0 <= 3 with rate +1 from 0: satisfiable at t=1 (both hold).
  const Guard box{std::vector<LinearConstraint>{atleast(0, 1.0), atmost(0, 3.0)}};
  EXPECT_DOUBLE_EQ(box.time_to_satisfy({0.0}, {1.0}), 1.0);
  // From 5 with rate +1: x0 <= 3 never becomes true again.
  EXPECT_TRUE(std::isinf(box.time_to_satisfy({5.0}, {1.0})));
}

TEST(Guard, ConjunctionOfGuards) {
  const Guard a{atleast(0, 1.0)};
  Guard b{atmost(0, 3.0)};
  b.min_dwell(2.0);
  const Guard c = Guard::conjunction(a, b);
  EXPECT_EQ(c.constraints().size(), 2u);
  EXPECT_DOUBLE_EQ(c.min_dwell(), 2.0);
  EXPECT_TRUE(c.eval({2.0}, 2.5));
  EXPECT_FALSE(c.eval({2.0}, 1.0));
}

TEST(Guard, CanonicalIsOrderInsensitive) {
  const Guard a{std::vector<LinearConstraint>{atleast(0, 1.0), atmost(1, 2.0)}};
  const Guard b{std::vector<LinearConstraint>{atmost(1, 2.0), atleast(0, 1.0)}};
  EXPECT_EQ(a.canonical(), b.canonical());
}

TEST(Flow, ConstantRatesAndDense) {
  Flow f;
  f.rate(1, 2.5);
  EXPECT_DOUBLE_EQ(f.rate_of(1), 2.5);
  EXPECT_DOUBLE_EQ(f.rate_of(0), 0.0);
  const auto dense = f.dense_rates(3);
  EXPECT_EQ(dense, (std::vector<double>{0.0, 2.5, 0.0}));
  EXPECT_FALSE(f.is_zero());
  EXPECT_TRUE(Flow{}.is_zero());
}

TEST(Flow, OdeOverridesSelectedVariables) {
  Flow f;
  f.rate(0, 1.0);
  f.ode([](const Valuation& x, Valuation& d) { d[1] = -x[1]; }, "decay");
  Valuation x{0.0, 4.0};
  Valuation d(2);
  f.eval(x, d);
  EXPECT_DOUBLE_EQ(d[0], 1.0);   // constant rate survives
  EXPECT_DOUBLE_EQ(d[1], -4.0);  // ODE wrote its variable
}

TEST(Flow, ShiftedActsOnSubRange) {
  Flow f;
  f.rate(0, 3.0);
  f.ode([](const Valuation& x, Valuation& d) { d[1] = x[0]; }, "couple");
  const Flow s = f.shifted(2, 2);  // child vars at [2, 4)
  Valuation x{9.0, 9.0, 1.5, 0.0};
  Valuation d(4);
  s.eval(x, d);
  EXPECT_DOUBLE_EQ(d[2], 3.0);
  EXPECT_DOUBLE_EQ(d[3], 1.5);  // sees child x[0] = global x[2]
  EXPECT_DOUBLE_EQ(d[0], 0.0);
}

TEST(Flow, MergedDisjointFlows) {
  Flow a;
  a.rate(0, 1.0);
  Flow b;
  b.rate(1, -2.0);
  const Flow m = Flow::merged(a, b);
  EXPECT_DOUBLE_EQ(m.rate_of(0), 1.0);
  EXPECT_DOUBLE_EQ(m.rate_of(1), -2.0);
}

TEST(Reset, AppliesAgainstPreTransitionSnapshot) {
  Reset r;
  r.set_fn(0, [](sim::SimTime, const Valuation& before) { return before[1] * 2.0; }, "2*x1");
  r.set_fn(1, [](sim::SimTime, const Valuation& before) { return before[0] + 1.0; }, "x0+1");
  Valuation x{10.0, 3.0};
  r.apply(0.0, x);
  EXPECT_DOUBLE_EQ(x[0], 6.0);   // from old x1
  EXPECT_DOUBLE_EQ(x[1], 11.0);  // from old x0 — order independent
}

TEST(Reset, NowPlusAndShift) {
  Reset r;
  r.set_now_plus(0, 5.0);
  Valuation x{0.0, 0.0, 0.0};
  r.apply(2.0, x);
  EXPECT_DOUBLE_EQ(x[0], 7.0);
  const Reset s = r.shifted(2);
  Valuation y{0.0, 0.0, 0.0};
  s.apply(1.0, y);
  EXPECT_DOUBLE_EQ(y[2], 6.0);
  EXPECT_EQ(s.written(), std::vector<VarId>{2});
}

TEST(Label, ParseAndPrintRoundTrip) {
  EXPECT_EQ(SyncLabel::parse("evt").prefix, SyncPrefix::kInternal);
  EXPECT_EQ(SyncLabel::parse("!evt").prefix, SyncPrefix::kSend);
  EXPECT_EQ(SyncLabel::parse("?evt").prefix, SyncPrefix::kRecv);
  EXPECT_EQ(SyncLabel::parse("??evt").prefix, SyncPrefix::kRecvUnreliable);
  for (const char* text : {"evt", "!evt", "?evt", "??evt"})
    EXPECT_EQ(SyncLabel::parse(text).str(), text);
}

TEST(Label, DistinctByPrefixSameRoot) {
  // "!l, ?l, ??l are considered three different synchronization labels,
  // though they are related to a same event by the root l" (§II-A.8).
  const SyncLabel send = SyncLabel::send("l");
  const SyncLabel recv = SyncLabel::recv("l");
  const SyncLabel recv_u = SyncLabel::recv_unreliable("l");
  EXPECT_NE(send, recv);
  EXPECT_NE(recv, recv_u);
  EXPECT_EQ(send.root, recv.root);
  EXPECT_TRUE(recv.is_reception());
  EXPECT_TRUE(recv_u.is_reception());
  EXPECT_FALSE(send.is_reception());
}

}  // namespace
}  // namespace ptecps::hybrid
