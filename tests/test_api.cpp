// The job API and the scenarios-as-data layer: ScenarioParams ⇄ JSON
// round-tripping for EVERY registry entry, strict scenario-file parsing
// (truncations, wrong types, unknown keys → clean errors), Job/JobResult
// serialization, Service dispatch, and the CampaignReport::json()
// dogfood (the report must parse with the repo's own JSON parser).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "api/service.hpp"
#include "campaign/runner.hpp"
#include "scenarios/registry.hpp"
#include "scenarios/serialize.hpp"
#include "util/json.hpp"

namespace ptecps {
namespace {

using util::Json;
using util::JsonError;

/// The lowering-level equality the round-trip property is about: both
/// params must build the same ScenarioSpec (all comparable fields; the
/// std::function members are compared by presence, which the equal
/// params guarantee construct identically).
void expect_specs_equal(const campaign::ScenarioSpec& a, const campaign::ScenarioSpec& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.approval, b.approval);
  EXPECT_EQ(a.with_lease, b.with_lease);
  EXPECT_EQ(a.deadline_wait, b.deadline_wait);
  EXPECT_EQ(a.mode, b.mode);
  EXPECT_EQ(a.verify, b.verify);
  EXPECT_EQ(a.dwell_bound, b.dwell_bound);
  EXPECT_EQ(a.monitor_config, b.monitor_config);
  EXPECT_EQ(a.channel, b.channel);
  EXPECT_EQ(a.horizon, b.horizon);
  EXPECT_EQ(a.seeds, b.seeds);
  EXPECT_EQ(static_cast<bool>(a.loss), static_cast<bool>(b.loss));
  EXPECT_EQ(static_cast<bool>(a.configure_links), static_cast<bool>(b.configure_links));
  EXPECT_EQ(static_cast<bool>(a.drive), static_cast<bool>(b.drive));
}

// ---------------------------------------------------------------------------
// Round-trip property over the whole registry
// ---------------------------------------------------------------------------

TEST(ScenarioSerialization, EveryRegistryEntryRoundTripsExactly) {
  for (const scenarios::RegistryEntry& entry : scenarios::registry()) {
    const scenarios::ScenarioDocument doc = scenarios::export_document(entry);
    const std::string text = scenarios::to_json(doc).dump(2);
    const scenarios::ScenarioDocument back = scenarios::document_from_text(text);

    // Field-for-field params equality (doubles survive the text form).
    EXPECT_EQ(back, doc) << entry.name;
    // Metadata travels along.
    EXPECT_EQ(back.summary, entry.summary) << entry.name;
    ASSERT_TRUE(back.expected.has_value()) << entry.name;
    EXPECT_EQ(*back.expected, entry.expected) << entry.name;
    // And the lowering is identical.
    expect_specs_equal(scenarios::build(doc.params), scenarios::build(back.params));
    // Canonical form is a fixed point: dump(parse(dump)) == dump.
    EXPECT_EQ(scenarios::to_json(back).dump(2), text) << entry.name;
  }
}

TEST(ScenarioSerialization, DefaultsOnlyFileBuildsTheDefaultDeployment) {
  // A hand-written file states only what differs from the defaults.
  const scenarios::ScenarioDocument doc = scenarios::document_from_text(
      R"({"name": "mini", "horizon": 50, "attacker": {"kind": "bernoulli", "p": 0.25}})");
  scenarios::ScenarioParams reference;
  reference.name = "mini";
  reference.horizon = 50.0;
  reference.attacker = attack::AttackerModel::bernoulli(0.25);
  EXPECT_EQ(doc.params, reference);
  EXPECT_FALSE(doc.expected.has_value());
}

// ---------------------------------------------------------------------------
// Strict parsing: fuzz the reader with broken documents
// ---------------------------------------------------------------------------

TEST(ScenarioSerialization, EveryTruncationFailsCleanly) {
  const std::string text =
      scenarios::to_json(scenarios::export_document(scenarios::registry().front()))
          .dump(2);
  // Any strict prefix (up to the closing brace) is not a document; each
  // must raise JsonError — never crash, never a silently default run.
  for (std::size_t len = 1; len + 2 < text.size(); ++len) {
    EXPECT_THROW(scenarios::document_from_text(text.substr(0, len)), JsonError)
        << "prefix length " << len;
  }
  EXPECT_NO_THROW(scenarios::document_from_text(text));
}

TEST(ScenarioSerialization, WrongTypesAreNamedErrors) {
  const auto expect_error = [](const char* text, const char* needle) {
    try {
      scenarios::document_from_text(text);
      FAIL() << "should have thrown for: " << text;
    } catch (const JsonError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "got: " << e.what();
    }
  };
  expect_error(R"({"horizon": "fast"})", "scenario.horizon");
  expect_error(R"({"with_lease": 1})", "scenario.with_lease");
  expect_error(R"({"attacker": {"kind": "bernoulli", "p": 2.0}})", "probability");
  expect_error(R"({"attacker": {"kind": "bernoulli", "intensity": 1.5}})", "probability");
  expect_error(R"({"relay_loss": 7})", "probability");
  expect_error(R"({"attacker": {"kind": "fancy"}})", "unknown attacker");
  expect_error(R"({"attacker": []})", "expected object");
  // v2 rejects the legacy vocabulary (and vice versa): a mixed-version
  // document is a mistake, not something to half-honor.
  expect_error(R"({"loss": {"kind": "bernoulli", "p": 0.1}})", "unknown key");
  expect_error(R"({"version": 1, "attacker": {"kind": "bernoulli"}})", "unknown key");
  expect_error(R"({"version": 1, "loss": {"kind": "fancy"}})", "unknown attacker");
  expect_error(R"({"topology": "ring"})", "unknown topology");
  expect_error(R"({"mode": "sometimes"})", "unknown mode");
  expect_error(R"({"expected": "maybe"})", "unknown verdict");
  expect_error(R"({"seed_count": -3})", "scenario.seed_count");
  expect_error(R"({"script": {"actions": [{"kind": "explode", "t": 1}]}})",
               "unknown action");
  expect_error(R"({"script": {"actions": [{"kind": "inject", "t": 1, "entity": 99999}]}})",
               "entity id out of range");
  expect_error(R"({"schema": "something-else"})", "not a scenario file");
  expect_error(R"({"version": 99})", "unsupported schema version");
}

TEST(ScenarioSerialization, UnknownKeysAreRejectedAtEveryLevel) {
  const auto expect_unknown = [](const char* text, const char* key) {
    try {
      scenarios::document_from_text(text);
      FAIL() << "should have thrown for: " << text;
    } catch (const JsonError& e) {
      EXPECT_NE(std::string(e.what()).find(std::string("unknown key") ),
                std::string::npos) << e.what();
      EXPECT_NE(std::string(e.what()).find(key), std::string::npos) << e.what();
    }
  };
  expect_unknown(R"({"horzon": 100})", "horzon");                       // top level
  expect_unknown(R"({"config": {"n_remote": 2}})", "n_remote");         // nested
  expect_unknown(R"({"attacker": {"kind": "bernoulli", "pp": 0.1}})", "pp");
  // v1 attacker objects have no intensity knob — strict there too.
  expect_unknown(R"({"version": 1, "loss": {"kind": "bernoulli", "intensity": 0.5}})",
                 "intensity");
  expect_unknown(R"({"verify": {"max_loss": 1}})", "max_loss");
  expect_unknown(R"({"script": {"actions": [{"kind": "inject", "t": 1, "name": "x",
                    "value": 3}]}})", "value");  // inject takes no value
}

// ---------------------------------------------------------------------------
// Job serialization
// ---------------------------------------------------------------------------

TEST(Job, FromJsonReadsRefsAndOverrides) {
  const api::Job job = api::Job::from_json(Json::parse(R"({
    "scenario": "laser-tracheotomy",
    "mode": "verify",
    "smoke": true,
    "tuning": {"seed_count": 3, "max_losses": 1, "verify_threads": 2},
    "seed_base": 99,
    "threads": 4,
    "expected": "proved"
  })"));
  EXPECT_EQ(job.scenario_ref, "laser-tracheotomy");
  EXPECT_FALSE(job.scenario.has_value());
  EXPECT_EQ(job.mode, campaign::RunMode::kVerify);
  EXPECT_TRUE(job.smoke);
  EXPECT_EQ(job.tuning.seed_count, 3u);
  EXPECT_EQ(job.tuning.max_losses, 1u);
  EXPECT_EQ(job.tuning.threads, 2u);
  EXPECT_EQ(job.seed_base, 99u);
  EXPECT_EQ(job.threads, 4u);
  EXPECT_EQ(job.expected, verify::VerifyStatus::kProved);
}

TEST(Job, FromJsonAcceptsInlineScenarioDocuments) {
  const api::Job job = api::Job::from_json(
      Json::parse(R"({"scenario": {"name": "inline-deploy", "horizon": 30}})"));
  ASSERT_TRUE(job.scenario.has_value());
  EXPECT_EQ(job.scenario->params.name, "inline-deploy");
  EXPECT_EQ(job.scenario->params.horizon, 30.0);
}

TEST(Job, FromJsonIsStrict) {
  EXPECT_THROW(api::Job::from_json(Json::parse(R"({"scenari": "x"})")), JsonError);
  EXPECT_THROW(api::Job::from_json(Json::parse(R"({})")), JsonError);  // no scenario
  EXPECT_THROW(api::Job::from_json(Json::parse(R"({"scenario": "x", "version": 9})")),
               JsonError);
  EXPECT_THROW(api::Job::from_json(
                   Json::parse(R"({"scenario": "x", "mode": "quickly"})")),
               JsonError);
}

TEST(Job, ToJsonRoundTrips) {
  api::Job job = api::Job::for_scenario("factory-press");
  job.mode = campaign::RunMode::kBoth;
  job.smoke = true;
  job.tuning.seed_count = 5;
  job.seed_base = 7;
  job.expected = verify::VerifyStatus::kViolation;
  const api::Job back = api::Job::from_json(Json::parse(job.to_json().dump()));
  EXPECT_EQ(back.scenario_ref, job.scenario_ref);
  EXPECT_EQ(back.mode, job.mode);
  EXPECT_EQ(back.smoke, job.smoke);
  EXPECT_EQ(back.tuning.seed_count, job.tuning.seed_count);
  EXPECT_EQ(back.seed_base, job.seed_base);
  EXPECT_EQ(back.expected, job.expected);
}

// ---------------------------------------------------------------------------
// Service dispatch
// ---------------------------------------------------------------------------

TEST(Job, AttackerIntensityOverrideRoundTripsAndValidates) {
  api::Job job = api::Job::for_scenario("laser-sustained-jammer");
  job.attacker_intensity = 0.25;
  const api::Job back = api::Job::from_json(Json::parse(job.to_json().dump()));
  ASSERT_TRUE(back.attacker_intensity.has_value());
  EXPECT_EQ(*back.attacker_intensity, 0.25);
  // Absent stays absent (the scenario's own intensity rules).
  const api::Job plain = api::Job::from_json(Json::parse(R"({"scenario": "x"})"));
  EXPECT_FALSE(plain.attacker_intensity.has_value());
  EXPECT_THROW(api::Job::from_json(
                   Json::parse(R"({"scenario": "x", "attacker_intensity": 1.5})")),
               JsonError);
}

TEST(Job, AttackerIntensityDrivesTheProverBudget) {
  // intensity 0.25 * budget 4 -> a 1-loss adversary; the override reaches
  // the resolved params and therefore the canonical digest / cache key.
  api::Job job = api::Job::for_scenario("laser-sustained-jammer");
  job.attacker_intensity = 0.25;
  const scenarios::ScenarioParams resolved =
      api::resolved_params(job, api::resolve_scenario(job));
  EXPECT_EQ(resolved.attacker.intensity, 0.25);
  EXPECT_EQ(scenarios::build(resolved).verify.max_losses, 1u);
}

TEST(Service, VerifiesARegistryScenarioAgainstItsExpectation) {
  api::Job job = api::Job::for_scenario("adversarial-drop");
  job.mode = campaign::RunMode::kVerify;
  job.smoke = true;
  const api::JobResult result = api::Service().run(job);
  EXPECT_TRUE(result.ok) << result.to_json().dump(2);
  EXPECT_EQ(result.verdict, "violation");
  EXPECT_EQ(result.expected, verify::VerifyStatus::kViolation);  // from the registry
  EXPECT_TRUE(result.expected_match);
  ASSERT_TRUE(result.report.has_value());
  ASSERT_TRUE(result.crossval.has_value());
  EXPECT_TRUE(result.crossval->ok());
  // The result serializes and reparses.
  const Json j = Json::parse(result.to_json().dump(2));
  EXPECT_EQ(j.at("verdict").as_string(), "violation");
  EXPECT_TRUE(j.at("ok").as_bool());
}

TEST(Service, RunsAnInlineDocumentBothModes) {
  scenarios::ScenarioDocument doc;
  doc.params.name = "inline-laser";
  doc.params.attacker = attack::AttackerModel::bernoulli(0.3);
  doc.params.script.period = 45.0;
  doc.params.script.phase = 15.0;
  doc.params.script.on_for = 25.0;
  doc.params.horizon = 100.0;
  doc.params.seed_count = 2;
  api::Job job = api::Job::for_document(doc);
  job.smoke = true;
  const api::JobResult result = api::Service().run(job);
  EXPECT_TRUE(result.ok) << result.to_json().dump(2);
  EXPECT_EQ(result.verdict, "proved");
  EXPECT_FALSE(result.expected.has_value());
  EXPECT_EQ(result.report->scenarios[0].runs.size(), 2u);
}

TEST(Service, ExpectationMismatchFailsTheJob) {
  api::Job job = api::Job::for_scenario("adversarial-drop");
  job.mode = campaign::RunMode::kVerify;
  job.smoke = true;
  job.expected = verify::VerifyStatus::kProved;  // wrong on purpose
  const api::JobResult result = api::Service().run(job);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.expected_match);
  EXPECT_EQ(result.verdict, "violation");  // the verdict itself is honest
}

TEST(Service, ExpectationWithoutAProverRunIsUnmetNotVacuouslyTrue) {
  // --expect asserts the PROVER's verdict; a Monte-Carlo-only job never
  // runs the prover, so the assertion must fail, not pass silently.
  api::Job job = api::Job::for_scenario("laser-tracheotomy");
  job.mode = campaign::RunMode::kMonteCarlo;
  job.smoke = true;
  job.expected = verify::VerifyStatus::kProved;
  const api::JobResult result = api::Service().run(job);
  EXPECT_FALSE(result.expected_match);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.verdict, "sampled-clean");
}

TEST(Service, MatrixHonorsCrossValidateOptOut) {
  // An out-of-budget verification is deterministically inconsistent for
  // the cross-validation layer ("inconclusive, never a pass").
  auto doc = scenarios::export_document(*scenarios::find_scenario("laser-tracheotomy"));
  doc.params.mode = campaign::RunMode::kVerify;
  doc.params.verify.max_states = 10;  // guaranteed kOutOfBudget
  doc.expected.reset();
  api::Job job = api::Job::for_document(doc);
  job.smoke = true;

  const api::MatrixResult checked = api::Service().run_matrix({job});
  ASSERT_EQ(checked.rows.size(), 1u);
  EXPECT_EQ(checked.rows[0].status, verify::VerifyStatus::kOutOfBudget);
  EXPECT_FALSE(checked.rows[0].consistent);

  api::Job opted_out = job;
  opted_out.cross_validate = false;
  const api::MatrixResult unchecked = api::Service().run_matrix({opted_out});
  ASSERT_EQ(unchecked.rows.size(), 1u);
  // The opted-out row's consistency is not held against the matrix
  // (overall ok still fails here — an out-of-budget proof fails
  // CampaignReport::ok() on its own merits).
  EXPECT_TRUE(unchecked.rows[0].consistent);
  EXPECT_FALSE(unchecked.ok);
}

TEST(Service, UnknownScenarioIsAnErrorResultNotAThrow) {
  const api::JobResult result = api::Service().run(api::Job::for_scenario("nope"));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.verdict, "error");
  ASSERT_FALSE(result.errors.empty());
  EXPECT_NE(result.errors[0].find("nope"), std::string::npos);
  EXPECT_FALSE(result.report.has_value());
}

TEST(Service, IllFormedJobsAreErrorResults) {
  api::Job both = api::Job::for_scenario("laser-tracheotomy");
  both.scenario = scenarios::ScenarioDocument{};
  EXPECT_FALSE(api::Service().run(both).ok);
  EXPECT_FALSE(api::Service().run(api::Job{}).ok);
}

TEST(Service, MatrixRunsSeveralJobsAsOneCampaign) {
  std::vector<api::Job> jobs;
  for (const char* name : {"laser-tracheotomy", "adversarial-drop"}) {
    api::Job job = api::Job::for_scenario(name);
    job.smoke = true;
    jobs.push_back(job);
  }
  const api::MatrixResult result = api::Service().run_matrix(jobs);
  EXPECT_TRUE(result.ok) << result.to_json().dump(2);
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].status, verify::VerifyStatus::kProved);
  EXPECT_EQ(result.rows[1].status, verify::VerifyStatus::kViolation);
  EXPECT_TRUE(result.rows[0].expected_match);
  EXPECT_TRUE(result.rows[1].expected_match);
  const Json j = Json::parse(result.to_json().dump());
  EXPECT_EQ(j.at("rows").as_array().size(), 2u);
}

TEST(Service, MatrixDedupsIdenticalJobs) {
  // Two identical jobs (same canonical params digest) collapse onto one
  // campaign slot: the proof runs once, the answer fans out per row —
  // and the rows are indistinguishable from running without duplicates.
  api::Job job = api::Job::for_scenario("laser-tracheotomy");
  job.smoke = true;
  api::Job other = api::Job::for_scenario("adversarial-drop");
  other.smoke = true;

  const api::MatrixResult deduped = api::Service().run_matrix({job, other, job, job});
  EXPECT_EQ(deduped.deduped, 2u);
  ASSERT_EQ(deduped.rows.size(), 4u);
  // Only 2 distinct scenarios actually executed.
  ASSERT_TRUE(deduped.report.has_value());
  EXPECT_EQ(deduped.report->scenarios.size(), 4u);  // fanned out in job order
  for (const std::size_t i : {0u, 2u, 3u}) {
    EXPECT_EQ(deduped.rows[i].scenario, "laser-tracheotomy");
    EXPECT_EQ(deduped.rows[i].status, deduped.rows[0].status);
    EXPECT_EQ(deduped.report->scenarios[i].verification->states_explored,
              deduped.report->scenarios[0].verification->states_explored);
  }
  // Compute wall belongs to the ONE row that executed the slot; the
  // fan-out copies answered for free and must say so (a frontier sweep
  // reads these as per-probe cost).
  EXPECT_GT(deduped.rows[0].wall_ms, 0.0);
  EXPECT_EQ(deduped.rows[2].wall_ms, 0.0);
  EXPECT_EQ(deduped.rows[3].wall_ms, 0.0);
  EXPECT_TRUE(deduped.ok) << deduped.to_json().dump(2);

  // Same verdicts as the duplicate-free matrix.
  const api::MatrixResult plain = api::Service().run_matrix({job, other});
  EXPECT_EQ(plain.deduped, 0u);
  EXPECT_EQ(plain.rows[0].status, deduped.rows[0].status);
  EXPECT_EQ(plain.rows[1].status, deduped.rows[1].status);
  EXPECT_EQ(plain.report->scenarios[0].verification->states_explored,
            deduped.report->scenarios[0].verification->states_explored);
}

TEST(Service, WallClockIsReportedButNotStored) {
  api::Job job = api::Job::for_scenario("laser-tracheotomy");
  job.mode = campaign::RunMode::kVerify;
  job.smoke = true;
  const api::JobResult result = api::Service().run(job);
  EXPECT_GT(result.wall_ms, 0.0);
  EXPECT_TRUE(result.to_json().find("wall_ms") != nullptr);

  // A result whose wall_ms is zero serializes without the key at all —
  // what keeps stored cache entries byte-stable across the feature.
  api::JobResult zeroed = result;
  zeroed.wall_ms = 0.0;
  EXPECT_TRUE(zeroed.to_json().find("wall_ms") == nullptr);
  // And the key round-trips when present.
  const api::JobResult back = api::JobResult::from_json(result.to_json());
  EXPECT_EQ(back.wall_ms, result.wall_ms);

  const api::MatrixResult matrix = api::Service().run_matrix({job});
  EXPECT_GT(matrix.wall_ms, 0.0);
  ASSERT_EQ(matrix.rows.size(), 1u);
  EXPECT_GT(matrix.rows[0].wall_ms, 0.0);
}

// ---------------------------------------------------------------------------
// CampaignReport::json() dogfood
// ---------------------------------------------------------------------------

TEST(CampaignReportJson, ParsesWithTheRepoOwnParser) {
  api::Job job = api::Job::for_scenario("adversarial-drop");
  job.smoke = true;
  const api::JobResult result = api::Service().run(job);
  ASSERT_TRUE(result.report.has_value());
  const Json j = Json::parse(result.report->json());
  EXPECT_EQ(j.at("scenarios").as_array().size(), 1u);
  const Json& verification = j.at("scenarios").as_array()[0].at("verification");
  EXPECT_EQ(verification.at("status").as_string(), "violation");
  // The counterexample digest is embedded and structured.
  const Json& cx = verification.at("counterexample");
  EXPECT_NE(cx.at("kind").as_string().find("dwell-bound"), std::string::npos);
  EXPECT_FALSE(cx.at("sends").as_array().empty());
}

// The satellite regression end to end: a report whose wall clock never
// ticked used to emit "runs_per_second": nan — invalid JSON.
TEST(CampaignReportJson, NonFiniteAggregatesEmitNull) {
  campaign::CampaignReport report;
  report.runs_per_second = std::numeric_limits<double>::quiet_NaN();
  report.wall_seconds = std::numeric_limits<double>::infinity();
  const Json j = Json::parse(report.json());  // must not throw
  EXPECT_TRUE(j.at("runs_per_second").is_null());
  EXPECT_TRUE(j.at("wall_seconds").is_null());
}

}  // namespace
}  // namespace ptecps
