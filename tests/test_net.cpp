// Unit tests for the wireless substrate: CRC, packet codec, loss models
// (with statistical checks as parameterized sweeps), channels, the star
// topology and the label-to-packet bridge.
#include <gtest/gtest.h>

#include <memory>

#include "net/bridge.hpp"
#include "net/channel.hpp"
#include "net/crc32.hpp"
#include "net/loss_model.hpp"
#include "net/packet.hpp"
#include "net/star_network.hpp"

namespace ptecps::net {
namespace {

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (standard check value).
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(std::span<const std::uint8_t>(data, 9)), 0xCBF43926u);
}

TEST(Packet, SerializeParseRoundTrip) {
  Packet p;
  p.seq = 42;
  p.src = 2;
  p.dst = 0;
  p.send_time = 123.456;
  p.event_root = "evt.xi2.to.xi0.Req";
  const auto bytes = p.serialize();
  const auto parsed = Packet::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, 42u);
  EXPECT_EQ(parsed->src, 2);
  EXPECT_EQ(parsed->dst, 0);
  EXPECT_DOUBLE_EQ(parsed->send_time, 123.456);
  EXPECT_EQ(parsed->event_root, p.event_root);
}

TEST(Packet, SingleBitFlipDetected) {
  Packet p;
  p.event_root = "evt.xi1.to.xi0.LeaseApprove";
  auto bytes = p.serialize();
  // Flip every bit position in turn; the CRC must catch each.
  for (std::size_t bit = 0; bit < bytes.size() * 8; ++bit) {
    auto corrupted = bytes;
    corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(Packet::parse(corrupted).has_value()) << "bit " << bit << " undetected";
  }
}

TEST(Packet, TruncationAndBadMagicRejected) {
  Packet p;
  p.event_root = "e";
  auto bytes = p.serialize();
  auto truncated = bytes;
  truncated.pop_back();
  EXPECT_FALSE(Packet::parse(truncated).has_value());
  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_FALSE(Packet::parse(bad_magic).has_value());
  EXPECT_FALSE(Packet::parse({}).has_value());
}

// Parameterized statistical check: the empirical loss rate of
// BernoulliLoss matches its parameter.
class BernoulliLossRate : public ::testing::TestWithParam<double> {};

TEST_P(BernoulliLossRate, EmpiricalRateMatches) {
  const double p = GetParam();
  BernoulliLoss model(p);
  sim::Rng rng(99);
  int lost = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) lost += model.lose(0.0, rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(lost) / n, p, 0.015);
}

INSTANTIATE_TEST_SUITE_P(Rates, BernoulliLossRate,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.9, 1.0));

TEST(GilbertElliott, StationaryLossMatchesTheory) {
  // p_gb = 0.1, p_bg = 0.3 -> stationary bad fraction = 0.1/0.4 = 0.25;
  // loss = 0.75*0.05 + 0.25*0.8 = 0.2375.
  GilbertElliottLoss model(0.1, 0.3, 0.05, 0.8);
  sim::Rng rng(7);
  int lost = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) lost += model.lose(0.0, rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(lost) / n, 0.2375, 0.01);
}

TEST(GilbertElliott, InitialStateFollowsTheStationaryDistribution) {
  // Regression: the model used to always start Good, biasing the first
  // packets of EVERY run optimistic.  The initial state must be drawn
  // from P(bad) = p_gb/(p_gb+p_bg) = 0.2/(0.2+0.3) = 0.4 on first use.
  sim::Rng master(42);
  const int n = 20000;
  int bad_starts = 0;
  for (int i = 0; i < n; ++i) {
    GilbertElliottLoss model(0.2, 0.3, 0.0, 1.0);
    EXPECT_FALSE(model.state_drawn());
    sim::Rng rng = master.fork(static_cast<std::uint64_t>(i));
    // With loss_good = 0 and loss_bad = 1, the first packet's verdict IS
    // the state after the first step — and the stationary distribution
    // is invariant under that step.
    bad_starts += model.lose(0.0, rng) ? 1 : 0;
    EXPECT_TRUE(model.state_drawn());
  }
  EXPECT_NEAR(static_cast<double>(bad_starts) / n, 0.4, 0.015);
}

TEST(GilbertElliott, DegenerateChainsStartDeterministically) {
  sim::Rng rng(5);
  // p_gb = 0: the Bad state is unreachable, so every start is Good.
  GilbertElliottLoss never_bad(0.0, 0.3, 0.0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(never_bad.lose(0.0, rng));
  // p_bg = 0 with p_gb > 0: Bad is absorbing — stationary mass 1 on Bad.
  GilbertElliottLoss always_bad(0.2, 0.0, 0.0, 1.0);
  EXPECT_TRUE(always_bad.lose(0.0, rng));
  EXPECT_TRUE(always_bad.in_bad_state());
}

TEST(CompoundLoss, LosesIffAnyComponentLoses) {
  sim::Rng rng(9);
  std::vector<std::unique_ptr<LossModel>> parts;
  parts.push_back(std::make_unique<ScriptedLoss>(std::vector<bool>{true, false, false}));
  parts.push_back(std::make_unique<ScriptedLoss>(std::vector<bool>{false, true, false}));
  CompoundLoss compound(std::move(parts));
  EXPECT_TRUE(compound.lose(0.0, rng));   // first part loses
  EXPECT_TRUE(compound.lose(0.0, rng));   // second part loses
  EXPECT_FALSE(compound.lose(0.0, rng));  // nobody loses
  EXPECT_EQ(compound.describe(), "compound(scripted(1/3 lost) + scripted(1/3 lost))");
}

TEST(CompoundLoss, EmpiricalRateMatchesIndependentComposition) {
  // Two independent Bernoulli components: P(lost) = 1 - (1-p)(1-q).
  sim::Rng rng(17);
  std::vector<std::unique_ptr<LossModel>> parts;
  parts.push_back(std::make_unique<BernoulliLoss>(0.2));
  parts.push_back(std::make_unique<BernoulliLoss>(0.1));
  CompoundLoss compound(std::move(parts));
  int lost = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) lost += compound.lose(0.0, rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(lost) / n, 1.0 - 0.8 * 0.9, 0.01);
}

TEST(GilbertElliott, ProducesBursts) {
  GilbertElliottLoss model(0.05, 0.2, 0.0, 1.0);
  sim::Rng rng(3);
  // Mean burst length = 1/p_bg = 5 consecutive losses.
  int bursts = 0, losses = 0;
  bool in_burst = false;
  for (int i = 0; i < 100000; ++i) {
    const bool lost = model.lose(0.0, rng);
    losses += lost ? 1 : 0;
    if (lost && !in_burst) ++bursts;
    in_burst = lost;
  }
  const double mean_burst = static_cast<double>(losses) / bursts;
  EXPECT_NEAR(mean_burst, 5.0, 0.5);
}

TEST(Interference, DutyCycleRespected) {
  InterferenceLoss model(10.0, 2.0, 1.0, 0.0);  // deterministic: lose iff in burst
  sim::Rng rng(1);
  EXPECT_TRUE(model.burst_active(0.5));
  EXPECT_TRUE(model.burst_active(11.9));
  EXPECT_FALSE(model.burst_active(5.0));
  EXPECT_TRUE(model.lose(1.0, rng));
  EXPECT_FALSE(model.lose(3.0, rng));
}

TEST(ReactiveJam, SensingOpensAJamWindowThatExpires) {
  // sense_prob 1, kill_prob 1: the first packet is sensed (and dies), the
  // window then kills everything for jam_len seconds and nothing after.
  ReactiveJamLoss model(1.0, 1.0, 2.0);
  sim::Rng rng(7);
  EXPECT_FALSE(model.jamming(0.0));
  EXPECT_TRUE(model.lose(1.0, rng));   // sensed, window [1, 3)
  EXPECT_TRUE(model.jamming(2.9));
  EXPECT_TRUE(model.lose(2.5, rng));   // inside the window
  EXPECT_FALSE(model.jamming(3.0));    // window closed...
  EXPECT_TRUE(model.lose(4.0, rng));   // ...but this packet re-triggers
}

TEST(ReactiveJam, SilentAttackerNeverLoses) {
  ReactiveJamLoss model(0.0, 1.0, 10.0);  // never senses: kill_prob moot
  sim::Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(model.lose(0.1 * i, rng));
}

TEST(ReactiveJam, KillProbabilityAppliesInsideTheWindow) {
  // Certain sensing, coin-flip kills: roughly half the packets inside a
  // permanently refreshed window should die.
  ReactiveJamLoss model(1.0, 0.5, 100.0);
  sim::Rng rng(13);
  int losses = 0;
  for (int i = 0; i < 100000; ++i) losses += model.lose(0.0, rng) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(losses) / 100000.0, 0.5, 0.02);
}

TEST(Scripted, VerdictsFollowScript) {
  auto model = ScriptedLoss::lose_indices({1, 3}, 5);
  sim::Rng rng(1);
  EXPECT_FALSE(model->lose(0.0, rng));
  EXPECT_TRUE(model->lose(0.0, rng));
  EXPECT_FALSE(model->lose(0.0, rng));
  EXPECT_TRUE(model->lose(0.0, rng));
  EXPECT_FALSE(model->lose(0.0, rng));
  EXPECT_FALSE(model->lose(0.0, rng));  // beyond script: deliver
  EXPECT_EQ(model->packets_seen(), 6u);
}

TEST(Channel, DeliversAfterDelayAndCountsStats) {
  sim::Scheduler sched;
  sim::Rng rng(5);
  ChannelConfig cfg;
  cfg.delay = 0.25;
  Channel ch("test", sched, rng.fork(1), std::make_unique<PerfectLink>(), cfg);
  std::vector<double> arrivals;
  ch.set_delivery([&](const Packet& p) {
    arrivals.push_back(sched.now());
    EXPECT_EQ(p.event_root, "hello");
  });
  Packet p;
  p.event_root = "hello";
  sched.schedule_at(1.0, [&] { ch.send(p); });
  sched.run();
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_NEAR(arrivals[0], 1.25, 1e-9);
  EXPECT_EQ(ch.stats().sent, 1u);
  EXPECT_EQ(ch.stats().delivered, 1u);
}

TEST(Channel, BitErrorsCaughtByCrc) {
  sim::Scheduler sched;
  sim::Rng rng(6);
  ChannelConfig cfg;
  cfg.delay = 0.0;
  cfg.bit_error_prob = 1.0;  // corrupt every packet
  Channel ch("noisy", sched, rng.fork(1), std::make_unique<PerfectLink>(), cfg);
  int delivered = 0;
  ch.set_delivery([&](const Packet&) { ++delivered; });
  for (int i = 0; i < 50; ++i) {
    Packet p;
    p.event_root = "x";
    ch.send(p);
  }
  sched.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ch.stats().corrupted, 50u);
}

TEST(Channel, LatePacketsRejectedByAcceptanceWindow) {
  sim::Scheduler sched;
  sim::Rng rng(8);
  ChannelConfig cfg;
  cfg.delay = 1.0;              // longer than the window
  cfg.acceptance_window = 0.5;  // §II-B: delays classified as lost
  Channel ch("slow", sched, rng.fork(1), std::make_unique<PerfectLink>(), cfg);
  int delivered = 0;
  ch.set_delivery([&](const Packet&) { ++delivered; });
  Packet p;
  p.event_root = "x";
  ch.send(p);
  sched.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ch.stats().rejected_late, 1u);
}

TEST(Channel, LossModelDropsBeforeTransmission) {
  sim::Scheduler sched;
  sim::Rng rng(9);
  Channel ch("dead", sched, rng.fork(1), std::make_unique<BernoulliLoss>(1.0),
             ChannelConfig{});
  int delivered = 0;
  ch.set_delivery([&](const Packet&) { ++delivered; });
  Packet p;
  ch.send(p);
  sched.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(ch.stats().lost, 1u);
  EXPECT_DOUBLE_EQ(ch.stats().delivery_ratio(), 0.0);
}

// Property sweep: with delay jitter straddling the acceptance window,
// the rejected-late fraction matches the fraction of the jitter range
// beyond the window.
class JitterWindow : public ::testing::TestWithParam<double> {};

TEST_P(JitterWindow, LateRejectionRateMatchesGeometry) {
  const double window = GetParam();
  sim::Scheduler sched;
  sim::Rng rng(41);
  ChannelConfig cfg;
  cfg.delay = 0.0;
  cfg.delay_jitter = 1.0;  // uniform in [0, 1)
  cfg.acceptance_window = window;
  Channel ch("jitter", sched, rng.fork(1), std::make_unique<PerfectLink>(), cfg);
  int delivered = 0;
  ch.set_delivery([&](const Packet&) { ++delivered; });
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    Packet p;
    p.event_root = "x";
    ch.send(p);
  }
  sched.run();
  const double expected_late = window >= 1.0 ? 0.0 : 1.0 - window;
  EXPECT_NEAR(static_cast<double>(ch.stats().rejected_late) / n, expected_late, 0.02);
  EXPECT_EQ(ch.stats().delivered, static_cast<std::uint64_t>(delivered));
  EXPECT_EQ(ch.stats().sent, static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Windows, JitterWindow,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0));

TEST(Channel, DuplicateDeliveryCountedAndLagged) {
  sim::Scheduler sched;
  sim::Rng rng(43);
  ChannelConfig cfg;
  cfg.delay = 0.1;
  cfg.duplicate_prob = 1.0;
  cfg.duplicate_lag = 0.05;
  Channel ch("dup", sched, rng.fork(1), std::make_unique<PerfectLink>(), cfg);
  std::vector<double> arrivals;
  ch.set_delivery([&](const Packet&) { arrivals.push_back(sched.now()); });
  Packet p;
  p.event_root = "x";
  sched.schedule_at(1.0, [&] { ch.send(p); });
  sched.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], 1.1, 1e-9);
  EXPECT_NEAR(arrivals[1], 1.15, 1e-9);
  EXPECT_EQ(ch.stats().duplicated, 1u);
  EXPECT_EQ(ch.stats().delivered, 2u);
}

TEST(StarNetwork, TopologyForbidsRemoteToRemote) {
  sim::Scheduler sched;
  sim::Rng rng(10);
  StarNetwork net(sched, rng, 3);
  EXPECT_NO_THROW(net.channel_for(0, 2));
  EXPECT_NO_THROW(net.channel_for(2, 0));
  EXPECT_THROW(net.channel_for(1, 2), std::invalid_argument);  // §II-B
  EXPECT_THROW(net.channel_for(1, 1), std::invalid_argument);
  EXPECT_THROW(net.uplink(0), std::invalid_argument);
  EXPECT_THROW(net.downlink(4), std::invalid_argument);
}

TEST(StarNetwork, SendEventRoutesToProperLink) {
  sim::Scheduler sched;
  sim::Rng rng(11);
  StarNetwork net(sched, rng, 2);
  std::string got;
  net.uplink(2).set_delivery([&](const Packet& p) { got = p.event_root; });
  net.downlink(1).set_delivery([](const Packet&) {});
  net.downlink(2).set_delivery([](const Packet&) {});
  net.uplink(1).set_delivery([](const Packet&) {});
  net.send_event(2, 0, "evt.xi2.to.xi0.Req");
  sched.run();
  EXPECT_EQ(got, "evt.xi2.to.xi0.Req");
  EXPECT_EQ(net.total_stats().sent, 1u);
  EXPECT_EQ(net.total_stats().delivered, 1u);
  EXPECT_FALSE(net.describe().empty());
}

TEST(Bridge, RoutesWirelessAndRejectsWrongSource) {
  // Two automata: 0 emits "up" (entity 0... actually entity mapping below),
  // 1 receives it.
  using namespace hybrid;
  Automaton sender("sender");
  {
    sender.add_location("s0");
    sender.add_location("s1");
    sender.add_initial_location(0);
    Edge e;
    e.src = 0;
    e.dst = 1;
    e.kind = TriggerKind::kTimed;
    e.dwell = 1.0;
    e.emits.push_back(SyncLabel::send("ping"));
    sender.add_edge(std::move(e));
  }
  Automaton receiver("receiver");
  {
    receiver.add_location("r0");
    receiver.add_location("r1");
    receiver.add_initial_location(0);
    Edge e;
    e.src = 0;
    e.dst = 1;
    e.kind = TriggerKind::kEvent;
    e.trigger = SyncLabel::recv_unreliable("ping");
    receiver.add_edge(std::move(e));
  }
  Engine engine({std::move(receiver), std::move(sender)});
  sim::Rng rng(12);
  StarNetwork net(engine.scheduler(), rng, 1);
  // entity 0 (base) -> automaton 0 (receiver); entity 1 -> automaton 1.
  NetEventRouter router(net, {0, 1});
  router.add_route("ping", 1, 0, Transport::kWireless);
  EXPECT_THROW(router.add_route("ping", 0, 1, Transport::kWireless),
               std::invalid_argument);  // duplicate root
  engine.set_router(&router);
  router.attach(engine);
  engine.init();
  engine.run_until(2.0);
  EXPECT_EQ(engine.current_location_name(0), "r1");
  EXPECT_EQ(router.wireless_sends(), 1u);
}

}  // namespace
}  // namespace ptecps::net
