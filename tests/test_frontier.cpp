// Robustness-frontier planner (api/frontier.hpp): bracket correctness on
// the registry's showcase scenarios, monotone probe trails, determinism
// across reruns, cache reuse, and failure attribution.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "api/frontier.hpp"
#include "api/service.hpp"
#include "util/json.hpp"

namespace ptecps::api {
namespace {

Job smoke_job(const std::string& name) {
  Job job = Job::for_scenario(name);
  job.smoke = true;
  return job;
}

TEST(Frontier, ProvedScenarioReportsFullMargin) {
  const Service service;
  const FrontierReport report =
      compute_frontier(service, {smoke_job("laser-tracheotomy")});
  EXPECT_TRUE(report.ok);
  ASSERT_EQ(report.results.size(), 1u);
  const FrontierResult& r = report.results[0];
  EXPECT_TRUE(r.ok);
  // No declared budget: the sweep grafts the default sustained jammer.
  EXPECT_EQ(r.budget, 4u);
  ASSERT_TRUE(r.safe_losses.has_value());
  EXPECT_EQ(*r.safe_losses, 4u);
  EXPECT_EQ(r.margin, 1.0);
  EXPECT_FALSE(r.critical_losses.has_value());
  // Endpoint probing: proved everywhere needs exactly two probes.
  ASSERT_EQ(r.probes.size(), 2u);
  EXPECT_EQ(r.probes[0].losses, 0u);
  EXPECT_EQ(r.probes[1].losses, 4u);
}

TEST(Frontier, ViolatedAtZeroReportsZeroMarginAndReplays) {
  const Service service;
  const FrontierReport report =
      compute_frontier(service, {smoke_job("adversarial-drop")});
  EXPECT_TRUE(report.ok);
  ASSERT_EQ(report.results.size(), 1u);
  const FrontierResult& r = report.results[0];
  EXPECT_FALSE(r.safe_losses.has_value());
  EXPECT_EQ(r.margin, 0.0);
  ASSERT_TRUE(r.critical_losses.has_value());
  EXPECT_EQ(*r.critical_losses, 0u);
  EXPECT_TRUE(r.counterexample_replayed);
  ASSERT_EQ(r.probes.size(), 1u);  // violated at zero: search ends immediately
}

TEST(Frontier, ShowcaseScenarioBracketsAtOneLoss) {
  // The acceptance bar for the whole feature: chain-impatient-unwind is
  // PROVED with the attacker disarmed and VIOLATED the moment the
  // adversary may spend a single loss — and the critical probe's
  // counterexample re-executes through the concrete engine.
  const Service service;
  const FrontierReport report =
      compute_frontier(service, {smoke_job("chain-impatient-unwind")});
  EXPECT_TRUE(report.ok);
  ASSERT_EQ(report.results.size(), 1u);
  const FrontierResult& r = report.results[0];
  ASSERT_TRUE(r.safe_losses.has_value());
  EXPECT_EQ(*r.safe_losses, 0u);
  ASSERT_TRUE(r.critical_losses.has_value());
  EXPECT_EQ(*r.critical_losses, 1u);
  EXPECT_EQ(r.critical_intensity, 0.25);
  EXPECT_TRUE(r.counterexample_replayed);
  // The probe trail is monotone: proved below the frontier, violated
  // at and above it.
  for (const FrontierProbe& p : r.probes) {
    if (p.losses <= *r.safe_losses)
      EXPECT_EQ(p.status, verify::VerifyStatus::kProved) << p.losses;
    else
      EXPECT_EQ(p.status, verify::VerifyStatus::kViolation) << p.losses;
  }
}

TEST(Frontier, ReportIsDeterministicAndWallClockFree) {
  const Service service;
  const std::vector<Job> jobs = {smoke_job("chain-impatient-unwind"),
                                 smoke_job("laser-sustained-jammer")};
  const FrontierReport a = compute_frontier(service, jobs);
  const FrontierReport b = compute_frontier(service, jobs);
  // Byte-stable artifacts: margins, probe trails, everything.
  EXPECT_EQ(a.to_json().dump_canonical(), b.to_json().dump_canonical());
  EXPECT_EQ(a.to_json().dump(2).find("wall"), std::string::npos);
}

TEST(Frontier, SecondSweepAnswersEveryProbeFromTheCache) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pte-frontier-cache-test").string();
  std::filesystem::remove_all(dir);
  ServiceOptions options;
  options.cache_dir = dir;
  const Service service(options);
  const std::vector<Job> jobs = {smoke_job("chain-impatient-unwind")};

  const FrontierReport cold = compute_frontier(service, jobs);
  EXPECT_TRUE(cold.ok);
  EXPECT_EQ(cold.cache.hits, 0u);
  EXPECT_GT(cold.cache.misses, 0u);

  const FrontierReport warm = compute_frontier(service, jobs);
  EXPECT_TRUE(warm.ok);
  EXPECT_EQ(warm.cache.misses, 0u);
  EXPECT_EQ(warm.cache.hits, cold.cache.misses);
  // Identical margins out of storage.
  ASSERT_EQ(warm.results.size(), cold.results.size());
  EXPECT_EQ(warm.results[0].margin, cold.results[0].margin);
  EXPECT_EQ(warm.results[0].safe_losses, cold.results[0].safe_losses);
  EXPECT_EQ(warm.results[0].critical_losses, cold.results[0].critical_losses);
  std::filesystem::remove_all(dir);
}

TEST(Frontier, NoJobsIsAnErrorNotACrash) {
  const Service service;
  const FrontierReport report = compute_frontier(service, {});
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.errors.size(), 1u);
}

TEST(Frontier, UnknownScenarioFailsAloneWithoutSinkingTheSweep) {
  const Service service;
  const FrontierReport report = compute_frontier(
      service, {smoke_job("laser-tracheotomy"), smoke_job("no-such-deployment")});
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.results.size(), 2u);
  EXPECT_TRUE(report.results[0].ok);
  EXPECT_EQ(report.results[0].margin, 1.0);
  EXPECT_FALSE(report.results[1].ok);
  ASSERT_FALSE(report.results[1].errors.empty());
}

TEST(Frontier, ZeroDefaultBudgetIsRejected) {
  const Service service;
  FrontierOptions options;
  options.default_budget = 0;
  const FrontierReport report =
      compute_frontier(service, {smoke_job("laser-tracheotomy")}, options);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.errors.empty());
}

}  // namespace
}  // namespace ptecps::api
