// Case study integration: the laser tracheotomy wireless CPS of §V.
#include <gtest/gtest.h>

#include "casestudy/trial.hpp"
#include "casestudy/ventilator.hpp"
#include "core/compliance.hpp"
#include "core/events.hpp"
#include "hybrid/independence.hpp"
#include "hybrid/structural.hpp"
#include "hybrid/wellformed.hpp"

namespace ptecps::casestudy {
namespace {

TEST(Ventilator, StandaloneIsSimpleAndWellFormed) {
  const hybrid::Automaton vent = make_standalone_ventilator();
  EXPECT_TRUE(hybrid::check_simple(vent).ok) << hybrid::check_simple(vent).message();
  EXPECT_TRUE(hybrid::check_wellformed(vent).ok)
      << hybrid::check_wellformed(vent).message();
}

TEST(Ventilator, DesignElaboratesParticipantAtFallBack) {
  const auto cfg = core::PatternConfig::laser_tracheotomy();
  const hybrid::Elaboration design = make_ventilator_design(cfg);
  // 6 pattern locations - Fall-Back + 2 pump locations = 7.
  EXPECT_EQ(design.automaton.num_locations(), 7u);
  EXPECT_TRUE(design.automaton.has_location("PumpOut"));
  EXPECT_TRUE(design.automaton.has_location("PumpIn"));
  EXPECT_FALSE(design.automaton.has_location("Fall-Back"));
  // Pump locations are safe (Fall-Back was safe); Risky Core and Exiting 1
  // keep their classification.
  EXPECT_FALSE(design.automaton.location(design.automaton.location_id("PumpOut")).risky);
  EXPECT_TRUE(design.automaton.location(design.automaton.location_id("Risky Core")).risky);
  // Projection maps pump locations back to Fall-Back.
  EXPECT_EQ(hybrid::project_location({design.info}, "PumpIn"), "Fall-Back");
  EXPECT_EQ(hybrid::project_location({design.info}, "Risky Core"), "Risky Core");
}

TEST(Ventilator, ComplianceTheorem2Passes) {
  const auto cfg = core::PatternConfig::laser_tracheotomy();
  const hybrid::Automaton vent = make_standalone_ventilator();
  const hybrid::Elaboration design = make_ventilator_design(cfg);
  const hybrid::Automaton supervisor = core::make_supervisor(cfg);
  const hybrid::Automaton scalpel = core::make_initializer(cfg);

  core::ComplianceInput input;
  input.config = &cfg;
  input.designs = {&supervisor, &design.automaton, &scalpel};
  input.plans.resize(3);
  input.plans[1].at.emplace_back("Fall-Back", &vent);
  const hybrid::CheckResult result = core::check_theorem2(input);
  EXPECT_TRUE(result.ok) << result.message();
}

TEST(Ventilator, ComplianceFailsForTamperedDesign) {
  const auto cfg = core::PatternConfig::laser_tracheotomy();
  const hybrid::Automaton vent = make_standalone_ventilator();
  hybrid::Automaton tampered = make_ventilator_design(cfg).automaton;
  // Check the design against a *different* configuration (shorter lease):
  // this is exactly the drift Theorem 2 compliance must catch.
  core::PatternConfig other = cfg;
  other.entities[0].t_run_max = 10.0;  // design was built with 35
  const hybrid::Automaton supervisor = core::make_supervisor(other);
  const hybrid::Automaton scalpel = core::make_initializer(other);
  core::ComplianceInput input;
  input.config = &other;
  input.designs = {&supervisor, &tampered, &scalpel};
  input.plans.resize(3);
  input.plans[1].at.emplace_back("Fall-Back", &vent);
  const hybrid::CheckResult result = core::check_theorem2(input);
  EXPECT_FALSE(result.ok);
}

TEST(Trial, CleanSessionTimeline) {
  // One surgeon request over perfect links; verify the §V/Fig. 1 shape.
  TrialOptions opt;
  opt.seed = 7;
  opt.duration = 120.0;
  opt.surgeon.mean_ton = 1e9;   // we drive requests manually
  opt.surgeon.mean_toff = 1e9;  // never cancel: leases expire
  opt.loss_factory = [] { return std::make_unique<net::PerfectLink>(); };
  LaserTracheotomySystem sys(std::move(opt));
  sys.run(14.0);  // past T^min_fb,0
  sys.engine().inject(sys.scalpel_index(), core::events::cmd_request(2));
  sys.run(120.0 - 14.0);
  TrialResult r = sys.result();
  EXPECT_EQ(r.emissions, 1u);
  EXPECT_EQ(r.failures, 0u) << sys.monitor().summary();
  EXPECT_EQ(r.evt_to_stop, 1u);  // no cancel: the lease forced the stop
  EXPECT_EQ(r.fire_events, 0u);
  EXPECT_GT(r.max_pause, 0.0);
  EXPECT_LE(r.max_pause, 60.0);
  EXPECT_LE(r.max_emission, 21.5 + 1e-9);  // T^max_run,2 + T_exit,2 (Exiting 1 is risky)
}

TEST(Trial, WithLeaseNoFailuresUnderInterference) {
  TrialOptions opt;
  opt.seed = 42;
  opt.duration = 600.0;
  opt.with_lease = true;
  TrialResult r = run_trial(opt);
  EXPECT_EQ(r.failures, 0u) << r.summary();
  EXPECT_GT(r.emissions, 0u);
  EXPECT_EQ(r.fire_events, 0u);
  EXPECT_GT(r.network.lost, 0u);  // interference was actually present
}

TEST(Trial, WithoutLeaseFailsUnderInterference) {
  TrialOptions opt;
  opt.seed = 42;
  opt.duration = 1800.0;
  opt.with_lease = false;
  TrialResult r = run_trial(opt);
  EXPECT_GT(r.failures, 0u) << r.summary();
  EXPECT_EQ(r.evt_to_stop, 0u);  // no lease timers -> no forced stops
}

TEST(Trial, DeterministicForFixedSeed) {
  TrialOptions opt;
  opt.seed = 99;
  opt.duration = 300.0;
  TrialResult a = run_trial(opt);
  TrialResult b = run_trial(opt);
  EXPECT_EQ(a.emissions, b.emissions);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.evt_to_stop, b.evt_to_stop);
  EXPECT_EQ(a.network.sent, b.network.sent);
  EXPECT_DOUBLE_EQ(a.min_spo2, b.min_spo2);
}

TEST(Trial, PerfectLinksManySessionsAllSafe) {
  TrialOptions opt;
  opt.seed = 3;
  opt.duration = 900.0;
  opt.loss_factory = [] { return std::make_unique<net::PerfectLink>(); };
  TrialResult r = run_trial(opt);
  EXPECT_EQ(r.failures, 0u) << r.summary();
  EXPECT_GE(r.emissions, 5u);
  EXPECT_EQ(r.fire_events, 0u);
}

}  // namespace
}  // namespace ptecps::casestudy
