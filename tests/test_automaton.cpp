// Unit tests for the hybrid automaton structure: builder invariants,
// validation diagnostics, label sets, risky partition, well-formedness.
#include <gtest/gtest.h>

#include "hybrid/automaton.hpp"
#include "hybrid/dot_export.hpp"
#include "hybrid/structural.hpp"
#include "hybrid/wellformed.hpp"

namespace ptecps::hybrid {
namespace {

Automaton minimal() {
  Automaton a("m");
  const LocId s = a.add_location("s");
  a.add_initial_location(s);
  return a;
}

TEST(Automaton, DuplicateNamesRejected) {
  Automaton a("dup");
  a.add_var("x");
  EXPECT_THROW(a.add_var("x"), std::invalid_argument);
  a.add_location("s");
  EXPECT_THROW(a.add_location("s"), std::invalid_argument);
}

TEST(Automaton, LookupByName) {
  Automaton a("look");
  const VarId x = a.add_var("x", 1.5);
  const LocId s = a.add_location("s", true);
  EXPECT_EQ(a.var_id("x"), x);
  EXPECT_EQ(a.location_id("s"), s);
  EXPECT_DOUBLE_EQ(a.var_init(x), 1.5);
  EXPECT_TRUE(a.is_risky(s));
  EXPECT_THROW(a.var_id("nope"), std::invalid_argument);
  EXPECT_THROW(a.location_id("nope"), std::invalid_argument);
}

TEST(Automaton, ValidateRequiresInitialLocation) {
  Automaton a("noinit");
  a.add_location("s");
  EXPECT_THROW(a.validate(), std::invalid_argument);
}

TEST(Automaton, ValidateCatchesDanglingEdge) {
  Automaton a = minimal();
  Edge e;
  e.src = 0;
  e.dst = 99;
  e.kind = TriggerKind::kTimed;
  e.dwell = 1.0;
  a.add_edge(std::move(e));
  EXPECT_THROW(a.validate(), std::invalid_argument);
}

TEST(Automaton, ValidateCatchesUnknownVariableInGuard) {
  Automaton a = minimal();
  Edge e;
  e.src = 0;
  e.dst = 0;
  e.kind = TriggerKind::kCondition;
  e.guard = Guard{atleast(7, 1.0)};  // variable 7 does not exist
  a.add_edge(std::move(e));
  EXPECT_THROW(a.validate(), std::invalid_argument);
}

TEST(Automaton, ValidateCatchesBadEventTrigger) {
  Automaton a = minimal();
  Edge e;
  e.src = 0;
  e.dst = 0;
  e.kind = TriggerKind::kEvent;
  e.trigger = SyncLabel::send("oops");  // must be a reception label
  a.add_edge(std::move(e));
  EXPECT_THROW(a.validate(), std::invalid_argument);
}

TEST(Automaton, ValidateCatchesNonPositiveTimedDwell) {
  Automaton a = minimal();
  Edge e;
  e.src = 0;
  e.dst = 0;
  e.kind = TriggerKind::kTimed;
  e.dwell = 0.0;
  a.add_edge(std::move(e));
  EXPECT_THROW(a.validate(), std::invalid_argument);
}

TEST(Automaton, ValidateCatchesTrivialConditionGuard) {
  Automaton a = minimal();
  Edge e;
  e.src = 0;
  e.dst = 0;
  e.kind = TriggerKind::kCondition;  // guard left empty
  a.add_edge(std::move(e));
  EXPECT_THROW(a.validate(), std::invalid_argument);
}

TEST(Automaton, ValidateCatchesReceptionEmit) {
  Automaton a = minimal();
  Edge e;
  e.src = 0;
  e.dst = 0;
  e.kind = TriggerKind::kTimed;
  e.dwell = 1.0;
  e.emits.push_back(SyncLabel::recv("nope"));
  a.add_edge(std::move(e));
  EXPECT_THROW(a.validate(), std::invalid_argument);
}

TEST(Automaton, LabelSetDeduplicated) {
  Automaton a("labels");
  const LocId s0 = a.add_location("s0");
  const LocId s1 = a.add_location("s1");
  a.add_initial_location(s0);
  for (int i = 0; i < 2; ++i) {
    Edge e;
    e.src = i == 0 ? s0 : s1;
    e.dst = i == 0 ? s1 : s0;
    e.kind = TriggerKind::kEvent;
    e.trigger = SyncLabel::recv_unreliable("ping");
    e.emits.push_back(SyncLabel::send("pong"));
    a.add_edge(std::move(e));
  }
  EXPECT_EQ(a.labels().size(), 2u);  // ??ping and !pong
  EXPECT_EQ(a.label_roots().size(), 2u);
}

TEST(Automaton, RiskyPartition) {
  Automaton a("risk");
  a.add_location("safe1");
  const LocId r = a.add_location("risky1", true);
  a.add_location("safe2");
  a.add_initial_location(0);
  EXPECT_EQ(a.risky_locations(), std::vector<LocId>{r});
}

TEST(Automaton, EdgesFromInInsertionOrder) {
  Automaton a("order");
  const LocId s0 = a.add_location("s0");
  const LocId s1 = a.add_location("s1");
  a.add_initial_location(s0);
  for (int i = 0; i < 3; ++i) {
    Edge e;
    e.src = s0;
    e.dst = s1;
    e.kind = TriggerKind::kTimed;
    e.dwell = static_cast<double>(i + 1);
    a.add_edge(std::move(e));
  }
  const auto from = a.edges_from(s0);
  ASSERT_EQ(from.size(), 3u);
  EXPECT_LT(from[0], from[1]);
  EXPECT_LT(from[1], from[2]);
}

TEST(Structural, CanonicalTextInsensitiveToDeclarationOrder) {
  auto build = [](bool reversed) {
    Automaton a("c");
    const LocId x = a.add_location(reversed ? "beta" : "alpha");
    const LocId y = a.add_location(reversed ? "alpha" : "beta");
    a.add_initial_location(reversed ? y : x);
    Edge e;
    e.src = a.location_id("alpha");
    e.dst = a.location_id("beta");
    e.kind = TriggerKind::kTimed;
    e.dwell = 1.0;
    a.add_edge(std::move(e));
    return a;
  };
  EXPECT_TRUE(structurally_equal(build(false), build(true)));
}

TEST(Structural, DetectsDifferences) {
  Automaton a("d");
  a.add_location("s");
  a.add_initial_location(0);
  Automaton b("d");
  b.add_location("s", /*risky=*/true);
  b.add_initial_location(0);
  EXPECT_FALSE(structurally_equal(a, b));
  EXPECT_FALSE(first_difference(a, b).empty());
}

TEST(Wellformed, FlagsUnreachableAndSink) {
  Automaton a("wf");
  const LocId s0 = a.add_location("s0");
  a.add_location("orphan");
  const LocId sink = a.add_location("sink");
  a.add_initial_location(s0);
  Edge e;
  e.src = s0;
  e.dst = sink;
  e.kind = TriggerKind::kTimed;
  e.dwell = 1.0;
  a.add_edge(std::move(e));
  const WellformedReport r = check_wellformed(a);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.unreachable_locations.size(), 1u);
  EXPECT_EQ(r.unreachable_locations[0], "orphan");
  ASSERT_GE(r.sink_locations.size(), 1u);
}

TEST(Wellformed, FlagsInstantaneousSelfLoop) {
  Automaton a("zeno");
  a.add_var("x", 1.0);
  const LocId s = a.add_location("s");
  a.add_initial_location(s);
  Edge e;
  e.src = s;
  e.dst = s;
  e.kind = TriggerKind::kCondition;
  e.guard = Guard{atleast(0, 0.5)};
  a.add_edge(std::move(e));
  const WellformedReport r = check_wellformed(a);
  EXPECT_FALSE(r.zero_time_cycles.empty());
}

TEST(Dot, ExportContainsLocationsAndEdges) {
  Automaton a("dot");
  const VarId x = a.add_var("x");
  const LocId s0 = a.add_location("start");
  const LocId s1 = a.add_location("danger", true);
  a.set_flow(s0, Flow{}.rate(x, 1.0));
  a.add_initial_location(s0);
  Edge e;
  e.src = s0;
  e.dst = s1;
  e.kind = TriggerKind::kCondition;
  e.guard = Guard{atleast(x, 2.0)};
  e.emits.push_back(SyncLabel::send("alarm"));
  a.add_edge(std::move(e));
  const std::string dot = to_dot(a);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("start"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);  // risky highlight
  EXPECT_NE(dot.find("!alarm"), std::string::npos);
  const std::string text = to_text(a);
  EXPECT_NE(text.find("danger [risky]"), std::string::npos);
}

}  // namespace
}  // namespace ptecps::hybrid
