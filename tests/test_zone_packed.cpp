// Property tests for the packed zone engine and the subsumption store:
//
//  * packed-bound arithmetic (bound_min / bound_add / bound_lt, infinity
//    handling) agrees with the double+bool reference representation on
//    randomized inputs drawn from the packable grid;
//  * inclusion signatures are monotone under zone inclusion;
//  * the antichain subsumption store never loses a reachable violation:
//    randomized small timed models are cross-checked against the naive
//    exact-equality store (VerifyOptions::subsumption = false), and both
//    must agree on the verdict;
//  * the AVX2 kernel table computes bit-identical results to the scalar
//    reference, both on raw randomized packed matrices and through a full
//    verification run;
//  * partial-order reduction preserves verdicts and counterexamples on
//    randomized models while never storing more states;
//  * parallel exploration is bit-identical across thread counts, and
//    threads = 0 resolves to hardware concurrency.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "campaign/scenario.hpp"
#include "core/config.hpp"
#include "scenarios/builder.hpp"
#include "sim/random.hpp"
#include "verify/checker.hpp"
#include "verify/model.hpp"
#include "verify/replay.hpp"
#include "verify/zone.hpp"
#include "verify/zone_kernels.hpp"

namespace ptecps::verify {
namespace {

// ---------------------------------------------------------------------------
// Packed-bound arithmetic vs. the double+bool reference
// ---------------------------------------------------------------------------

/// A random bound on the packable grid (value = k * 2^-32 s), sometimes
/// infinite.  Grid values round-trip exactly through pack/unpack, which
/// is what makes exact agreement with the reference well-defined.
Bound random_bound(sim::Rng& rng) {
  if (rng.bernoulli(0.1)) return Bound::inf();
  // Fixed-point numerator in ±2^40 (values up to ~256 s, well inside the
  // packable range) — biased toward small "model-like" magnitudes.
  const std::int64_t fixed = static_cast<std::int64_t>(rng.uniform_int(1ull << 41)) -
                             (std::int64_t{1} << 40);
  const double value = static_cast<double>(fixed) / kPackedScale;
  return rng.bernoulli(0.5) ? Bound::lt(value) : Bound::le(value);
}

TEST(PackedBound, RoundTripsGridValues) {
  sim::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const Bound b = random_bound(rng);
    const PackedBound w = pack(b);
    const Bound back = unpack(w);
    if (b.is_inf()) {
      EXPECT_TRUE(back.is_inf());
      EXPECT_TRUE(packed_is_inf(w));
    } else {
      EXPECT_EQ(back, b) << b.value << (b.strict ? " <" : " <=");
      EXPECT_FALSE(packed_is_inf(w));
      EXPECT_EQ(packed_strict(w), b.strict);
      EXPECT_DOUBLE_EQ(packed_value(w), b.value);
    }
  }
}

TEST(PackedBound, OrderingMatchesReference) {
  sim::Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const Bound a = random_bound(rng);
    const Bound b = random_bound(rng);
    const PackedBound wa = pack(a), wb = pack(b);
    // Reference bound_lt treats two infinities as equal (both strict);
    // packed infinity is one canonical word, same behavior.
    EXPECT_EQ(packed_tighter(wa, wb), bound_lt(a, b))
        << a.value << "/" << a.strict << " vs " << b.value << "/" << b.strict;
    EXPECT_EQ(packed_min(wa, wb), pack(bound_min(a, b)));
  }
}

TEST(PackedBound, AdditionMatchesReference) {
  sim::Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const Bound a = random_bound(rng);
    const Bound b = random_bound(rng);
    const Bound ref = bound_add(a, b);
    const PackedBound sum = packed_add(pack(a), pack(b));
    if (ref.is_inf()) {
      EXPECT_TRUE(packed_is_inf(sum));
    } else {
      // Grid + grid is exact: the packed sum must equal the packed
      // reference sum bit for bit.
      EXPECT_EQ(sum, pack(ref)) << a.value << " + " << b.value;
    }
  }
}

TEST(PackedBound, InfinityIsAbsorbingAndLoosest) {
  const PackedBound inf = kPackedInf;
  const PackedBound tight = packed_lt(-100.0);
  const PackedBound loose = packed_le(100.0);
  EXPECT_TRUE(packed_is_inf(packed_add(inf, tight)));
  EXPECT_TRUE(packed_is_inf(packed_add(inf, inf)));
  EXPECT_TRUE(packed_tighter(loose, inf));
  EXPECT_TRUE(packed_tighter(tight, loose));
  EXPECT_EQ(packed_min(inf, loose), loose);
}

// ---------------------------------------------------------------------------
// Inclusion signatures
// ---------------------------------------------------------------------------

Zone random_zone(std::size_t clocks, sim::Rng& rng) {
  Zone z(clocks);
  z.up();
  for (std::size_t c = 0; c < 1 + rng.uniform_int(3); ++c)
    z.constrain(1 + rng.uniform_int(clocks), 0,
                packed_le(1.0 + static_cast<double>(rng.uniform_int(50))));
  for (std::size_t r = 0; r < rng.uniform_int(3); ++r)
    z.reset(1 + rng.uniform_int(clocks));
  if (rng.bernoulli(0.5)) z.up();
  return z;
}

TEST(ZoneSignature, MonotoneUnderInclusion) {
  sim::Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t clocks = 2 + rng.uniform_int(6);
    Zone big = random_zone(clocks, rng);
    if (big.is_empty()) continue;
    Zone small = big;
    small.constrain(1 + rng.uniform_int(clocks), 0,
                    packed_le(0.5 + static_cast<double>(rng.uniform_int(20))));
    if (small.is_empty()) continue;
    ASSERT_TRUE(small.subset_of(big));
    EXPECT_LE(small.signature(), big.signature());
    EXPECT_LE(small.lower_signature(), big.lower_signature());
  }
}

TEST(ZoneWiden, RepresentsTheExtrapolatedSet) {
  // probe ⊆ widened(z)  must agree with  probe ⊆ extrapolate(z): the
  // widened matrix is a non-canonical representation of the same set,
  // and inclusion only needs the probe canonical.
  sim::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t clocks = 2 + rng.uniform_int(4);
    const double k = 10.0;
    Zone z = random_zone(clocks, rng);
    if (z.is_empty()) continue;
    Zone widened = z, extrapolated = z;
    widened.widen(k);
    extrapolated.extrapolate(k);
    const Zone probe = random_zone(clocks, rng);
    if (probe.is_empty()) continue;
    EXPECT_EQ(probe.subset_of(widened), probe.subset_of(extrapolated)) << i;
  }
}

// ---------------------------------------------------------------------------
// SIMD kernels vs. the scalar reference
// ---------------------------------------------------------------------------

TEST(ZoneKernels, Avx2MatchesScalarOnRandomMatrices) {
  const ZoneKernels* simd = avx2_zone_kernels();
  if (simd == nullptr) GTEST_SKIP() << "no AVX2 on this CPU/build";
  const ZoneKernels& scalar = scalar_zone_kernels();
  sim::Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    // Lengths 1..41 cover every vector/tail split (4 lanes per iteration).
    const std::size_t n = 1 + rng.uniform_int(41);
    std::vector<std::int64_t> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = pack(random_bound(rng));
      b[i] = pack(random_bound(rng));
    }
    Bound d;
    do d = random_bound(rng);
    while (d.is_inf());  // min_plus_row's contract: d_ik finite
    const PackedBound d_ik = pack(d);

    std::vector<std::int64_t> s_row = a, v_row = a;
    scalar.min_plus_row(s_row.data(), b.data(), d_ik, n);
    simd->min_plus_row(v_row.data(), b.data(), d_ik, n);
    EXPECT_EQ(s_row, v_row) << "min_plus_row, n=" << n;

    // The aliased call close() makes for row i == row k.
    std::vector<std::int64_t> s_alias = a, v_alias = a;
    scalar.min_plus_row(s_alias.data(), s_alias.data(), d_ik, n);
    simd->min_plus_row(v_alias.data(), v_alias.data(), d_ik, n);
    EXPECT_EQ(s_alias, v_alias) << "aliased min_plus_row, n=" << n;

    EXPECT_EQ(scalar.leq_all(a.data(), b.data(), n),
              simd->leq_all(a.data(), b.data(), n));
    EXPECT_TRUE(simd->leq_all(a.data(), a.data(), n));

    std::vector<std::int64_t> s_min = a, v_min = a;
    scalar.min_inplace(s_min.data(), b.data(), n);
    simd->min_inplace(v_min.data(), b.data(), n);
    EXPECT_EQ(s_min, v_min) << "min_inplace, n=" << n;

    EXPECT_EQ(scalar.shift_sum(a.data(), n, 16), simd->shift_sum(a.data(), n, 16));
    EXPECT_EQ(scalar.shift_sum(a.data(), n, 8), simd->shift_sum(a.data(), n, 8));
  }
}

// ---------------------------------------------------------------------------
// Subsumption store vs. the exact-equality oracle on random timed models
// ---------------------------------------------------------------------------

/// A randomized small pattern system: synthesized configs (always
/// Theorem-1-consistent) judged against either their own dwell bound
/// (expected: proved) or a lowered one (expected: violation).  The
/// generator itself now lives in the scenario library
/// (scenarios::synthesize — same draw sequence as the historical local
/// helper, so the trial mix is unchanged).
campaign::ScenarioSpec random_model(sim::Rng& rng, bool breakable) {
  scenarios::SynthesizeOptions options;
  options.n_remotes = 2;
  options.breakable = breakable;
  options.mode = campaign::RunMode::kVerify;
  return scenarios::synthesize(rng, options);
}

TEST(SubsumptionStore, NeverLosesAReachableViolation) {
  sim::Rng rng(6);
  int violations_seen = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const campaign::ScenarioSpec spec = random_model(rng, true);
    const CompiledModel model = compile_model(spec.verify_input());

    VerifyOptions antichain;
    antichain.max_losses = 1;
    antichain.max_injections = 1;
    antichain.max_states = 400'000;
    VerifyOptions oracle = antichain;
    oracle.subsumption = false;

    const VerifyResult fast = verify_pte(model, antichain);
    const VerifyResult naive = verify_pte(model, oracle);
    ASSERT_NE(naive.status, VerifyStatus::kOutOfBudget) << naive.summary();
    ASSERT_NE(fast.status, VerifyStatus::kOutOfBudget) << fast.summary();
    // The property: the stores agree on the verdict.  (In particular the
    // antichain must not have dropped a state from which the oracle can
    // reach a violation.)
    EXPECT_EQ(fast.status, naive.status)
        << "antichain: " << fast.summary() << "\noracle: " << naive.summary();
    // Subsumption only prunes — it must never store more than the
    // equality-dedup oracle.
    EXPECT_LE(fast.states_stored, naive.states_stored);
    if (fast.status == VerifyStatus::kViolation) {
      ++violations_seen;
      ASSERT_TRUE(fast.counterexample.has_value());
      EXPECT_EQ(fast.counterexample->kind, naive.counterexample->kind);
      // Both counterexamples concretize and replay in the real engine.
      const ReplayResult replay =
          replay_counterexample(spec.verify_input(), *fast.counterexample);
      EXPECT_TRUE(replay.reproduced) << fast.counterexample->str();
    }
  }
  // The trial mix must actually exercise the violating path.
  EXPECT_GE(violations_seen, 1);
}

// ---------------------------------------------------------------------------
// Parallel determinism
// ---------------------------------------------------------------------------

std::string fingerprint(const VerifyResult& r) {
  std::string fp = r.summary();
  if (r.counterexample.has_value()) fp += "\n" + r.counterexample->str();
  return fp;
}

TEST(ZoneKernels, FullVerificationIsBitIdenticalAcrossArms) {
  const ZoneKernels* simd = avx2_zone_kernels();
  if (simd == nullptr) GTEST_SKIP() << "no AVX2 on this CPU/build";
  sim::Rng rng(9);
  for (int trial = 0; trial < 4; ++trial) {
    const campaign::ScenarioSpec spec = random_model(rng, trial % 2 == 1);
    const CompiledModel model = compile_model(spec.verify_input());
    VerifyOptions opt;
    opt.max_losses = 1;
    opt.max_injections = 1;
    opt.max_states = 400'000;
    set_zone_kernels_for_test(&scalar_zone_kernels());
    const VerifyResult scalar_run = verify_pte(model, opt);
    set_zone_kernels_for_test(simd);
    const VerifyResult simd_run = verify_pte(model, opt);
    set_zone_kernels_for_test(nullptr);
    // Same verdict, same counterexample, same state counts — the dispatch
    // arm must be unobservable in the result.
    EXPECT_EQ(fingerprint(scalar_run), fingerprint(simd_run)) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Partial-order reduction vs. the full interleaving exploration
// ---------------------------------------------------------------------------

TEST(PartialOrderReduction, PreservesVerdictsOnRandomModels) {
  sim::Rng rng(8);
  int violations_seen = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const campaign::ScenarioSpec spec = random_model(rng, trial % 2 == 1);
    const CompiledModel model = compile_model(spec.verify_input());

    VerifyOptions reduced_opt;
    reduced_opt.max_losses = 1;
    reduced_opt.max_injections = 1;
    reduced_opt.max_states = 400'000;
    VerifyOptions full_opt = reduced_opt;
    full_opt.por = false;

    const VerifyResult reduced = verify_pte(model, reduced_opt);
    const VerifyResult full = verify_pte(model, full_opt);
    ASSERT_NE(full.status, VerifyStatus::kOutOfBudget) << full.summary();
    ASSERT_NE(reduced.status, VerifyStatus::kOutOfBudget) << reduced.summary();
    // The property: the reduction is exact — same verdict with and
    // without it, and it only ever prunes.
    EXPECT_EQ(reduced.status, full.status)
        << "por: " << reduced.summary() << "\nfull: " << full.summary();
    EXPECT_LE(reduced.states_stored, full.states_stored);
    if (reduced.status == VerifyStatus::kViolation) {
      ++violations_seen;
      ASSERT_TRUE(reduced.counterexample.has_value());
      EXPECT_EQ(reduced.counterexample->kind, full.counterexample->kind);
      // The reduced run's counterexample still concretizes to a replayable
      // concrete schedule (POR must not free a clock the trace reads).
      const ReplayResult replay =
          replay_counterexample(spec.verify_input(), *reduced.counterexample);
      EXPECT_TRUE(replay.reproduced) << reduced.counterexample->str();
    }
  }
  EXPECT_GE(violations_seen, 1);
}

TEST(ParallelChecker, BitIdenticalAcrossThreadCounts) {
  for (const bool broken : {false, true}) {
    campaign::ScenarioSpec spec;
    spec.name = "laser";
    spec.config = core::PatternConfig::laser_tracheotomy();
    spec.mode = campaign::RunMode::kVerify;
    if (broken) spec.dwell_bound = 30.0;
    const CompiledModel model = compile_model(spec.verify_input());
    VerifyOptions opt;
    opt.max_losses = 1;
    opt.max_injections = 1;
    std::string reference;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
      opt.threads = threads;
      const VerifyResult r = verify_pte(model, opt);
      if (threads == 1)
        reference = fingerprint(r);
      else
        EXPECT_EQ(fingerprint(r), reference) << "threads=" << threads;
    }
    ASSERT_FALSE(reference.empty());
  }
}

TEST(ParallelChecker, BudgetCutoffIsDeterministicAcrossThreads) {
  // A budget that lands mid-round must truncate the same canonical
  // prefix at every thread count.
  campaign::ScenarioSpec spec;
  spec.name = "laser";
  spec.config = core::PatternConfig::laser_tracheotomy();
  spec.mode = campaign::RunMode::kVerify;
  const CompiledModel model = compile_model(spec.verify_input());
  VerifyOptions opt;
  opt.max_losses = 1;
  opt.max_injections = 1;
  opt.max_states = 137;  // deliberately mid-round
  std::string reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    opt.threads = threads;
    const VerifyResult r = verify_pte(model, opt);
    EXPECT_EQ(r.status, VerifyStatus::kOutOfBudget);
    if (threads == 1)
      reference = fingerprint(r);
    else
      EXPECT_EQ(fingerprint(r), reference);
  }
}

TEST(ParallelChecker, ZeroThreadsResolvesToHardwareConcurrency) {
  campaign::ScenarioSpec spec;
  spec.name = "laser";
  spec.config = core::PatternConfig::laser_tracheotomy();
  spec.mode = campaign::RunMode::kVerify;
  const CompiledModel model = compile_model(spec.verify_input());
  VerifyOptions opt;
  opt.max_losses = 1;
  opt.max_injections = 1;
  opt.threads = 0;
  const VerifyResult r = verify_pte(model, opt);
  const std::size_t hw = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  EXPECT_EQ(r.threads_used, hw);
  // Resolution changes nothing but the worker count: same fingerprint as
  // an explicit single-thread run.
  opt.threads = 1;
  const VerifyResult one = verify_pte(model, opt);
  EXPECT_EQ(one.threads_used, 1u);
  EXPECT_EQ(fingerprint(r), fingerprint(one));
}

}  // namespace
}  // namespace ptecps::verify
