// Property tests for the packed zone engine and the subsumption store:
//
//  * packed-bound arithmetic (bound_min / bound_add / bound_lt, infinity
//    handling) agrees with the double+bool reference representation on
//    randomized inputs drawn from the packable grid;
//  * inclusion signatures are monotone under zone inclusion;
//  * the antichain subsumption store never loses a reachable violation:
//    randomized small timed models are cross-checked against the naive
//    exact-equality store (VerifyOptions::subsumption = false), and both
//    must agree on the verdict;
//  * parallel exploration is bit-identical across thread counts.
#include <gtest/gtest.h>

#include <string>

#include "campaign/scenario.hpp"
#include "core/config.hpp"
#include "scenarios/builder.hpp"
#include "sim/random.hpp"
#include "verify/checker.hpp"
#include "verify/model.hpp"
#include "verify/replay.hpp"
#include "verify/zone.hpp"

namespace ptecps::verify {
namespace {

// ---------------------------------------------------------------------------
// Packed-bound arithmetic vs. the double+bool reference
// ---------------------------------------------------------------------------

/// A random bound on the packable grid (value = k * 2^-32 s), sometimes
/// infinite.  Grid values round-trip exactly through pack/unpack, which
/// is what makes exact agreement with the reference well-defined.
Bound random_bound(sim::Rng& rng) {
  if (rng.bernoulli(0.1)) return Bound::inf();
  // Fixed-point numerator in ±2^40 (values up to ~256 s, well inside the
  // packable range) — biased toward small "model-like" magnitudes.
  const std::int64_t fixed = static_cast<std::int64_t>(rng.uniform_int(1ull << 41)) -
                             (std::int64_t{1} << 40);
  const double value = static_cast<double>(fixed) / kPackedScale;
  return rng.bernoulli(0.5) ? Bound::lt(value) : Bound::le(value);
}

TEST(PackedBound, RoundTripsGridValues) {
  sim::Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const Bound b = random_bound(rng);
    const PackedBound w = pack(b);
    const Bound back = unpack(w);
    if (b.is_inf()) {
      EXPECT_TRUE(back.is_inf());
      EXPECT_TRUE(packed_is_inf(w));
    } else {
      EXPECT_EQ(back, b) << b.value << (b.strict ? " <" : " <=");
      EXPECT_FALSE(packed_is_inf(w));
      EXPECT_EQ(packed_strict(w), b.strict);
      EXPECT_DOUBLE_EQ(packed_value(w), b.value);
    }
  }
}

TEST(PackedBound, OrderingMatchesReference) {
  sim::Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const Bound a = random_bound(rng);
    const Bound b = random_bound(rng);
    const PackedBound wa = pack(a), wb = pack(b);
    // Reference bound_lt treats two infinities as equal (both strict);
    // packed infinity is one canonical word, same behavior.
    EXPECT_EQ(packed_tighter(wa, wb), bound_lt(a, b))
        << a.value << "/" << a.strict << " vs " << b.value << "/" << b.strict;
    EXPECT_EQ(packed_min(wa, wb), pack(bound_min(a, b)));
  }
}

TEST(PackedBound, AdditionMatchesReference) {
  sim::Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const Bound a = random_bound(rng);
    const Bound b = random_bound(rng);
    const Bound ref = bound_add(a, b);
    const PackedBound sum = packed_add(pack(a), pack(b));
    if (ref.is_inf()) {
      EXPECT_TRUE(packed_is_inf(sum));
    } else {
      // Grid + grid is exact: the packed sum must equal the packed
      // reference sum bit for bit.
      EXPECT_EQ(sum, pack(ref)) << a.value << " + " << b.value;
    }
  }
}

TEST(PackedBound, InfinityIsAbsorbingAndLoosest) {
  const PackedBound inf = kPackedInf;
  const PackedBound tight = packed_lt(-100.0);
  const PackedBound loose = packed_le(100.0);
  EXPECT_TRUE(packed_is_inf(packed_add(inf, tight)));
  EXPECT_TRUE(packed_is_inf(packed_add(inf, inf)));
  EXPECT_TRUE(packed_tighter(loose, inf));
  EXPECT_TRUE(packed_tighter(tight, loose));
  EXPECT_EQ(packed_min(inf, loose), loose);
}

// ---------------------------------------------------------------------------
// Inclusion signatures
// ---------------------------------------------------------------------------

Zone random_zone(std::size_t clocks, sim::Rng& rng) {
  Zone z(clocks);
  z.up();
  for (std::size_t c = 0; c < 1 + rng.uniform_int(3); ++c)
    z.constrain(1 + rng.uniform_int(clocks), 0,
                packed_le(1.0 + static_cast<double>(rng.uniform_int(50))));
  for (std::size_t r = 0; r < rng.uniform_int(3); ++r)
    z.reset(1 + rng.uniform_int(clocks));
  if (rng.bernoulli(0.5)) z.up();
  return z;
}

TEST(ZoneSignature, MonotoneUnderInclusion) {
  sim::Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t clocks = 2 + rng.uniform_int(6);
    Zone big = random_zone(clocks, rng);
    if (big.is_empty()) continue;
    Zone small = big;
    small.constrain(1 + rng.uniform_int(clocks), 0,
                    packed_le(0.5 + static_cast<double>(rng.uniform_int(20))));
    if (small.is_empty()) continue;
    ASSERT_TRUE(small.subset_of(big));
    EXPECT_LE(small.signature(), big.signature());
    EXPECT_LE(small.lower_signature(), big.lower_signature());
  }
}

TEST(ZoneWiden, RepresentsTheExtrapolatedSet) {
  // probe ⊆ widened(z)  must agree with  probe ⊆ extrapolate(z): the
  // widened matrix is a non-canonical representation of the same set,
  // and inclusion only needs the probe canonical.
  sim::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t clocks = 2 + rng.uniform_int(4);
    const double k = 10.0;
    Zone z = random_zone(clocks, rng);
    if (z.is_empty()) continue;
    Zone widened = z, extrapolated = z;
    widened.widen(k);
    extrapolated.extrapolate(k);
    const Zone probe = random_zone(clocks, rng);
    if (probe.is_empty()) continue;
    EXPECT_EQ(probe.subset_of(widened), probe.subset_of(extrapolated)) << i;
  }
}

// ---------------------------------------------------------------------------
// Subsumption store vs. the exact-equality oracle on random timed models
// ---------------------------------------------------------------------------

/// A randomized small pattern system: synthesized configs (always
/// Theorem-1-consistent) judged against either their own dwell bound
/// (expected: proved) or a lowered one (expected: violation).  The
/// generator itself now lives in the scenario library
/// (scenarios::synthesize — same draw sequence as the historical local
/// helper, so the trial mix is unchanged).
campaign::ScenarioSpec random_model(sim::Rng& rng, bool breakable) {
  scenarios::SynthesizeOptions options;
  options.n_remotes = 2;
  options.breakable = breakable;
  options.mode = campaign::RunMode::kVerify;
  return scenarios::synthesize(rng, options);
}

TEST(SubsumptionStore, NeverLosesAReachableViolation) {
  sim::Rng rng(6);
  int violations_seen = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const campaign::ScenarioSpec spec = random_model(rng, true);
    const CompiledModel model = compile_model(spec.verify_input());

    VerifyOptions antichain;
    antichain.max_losses = 1;
    antichain.max_injections = 1;
    antichain.max_states = 400'000;
    VerifyOptions oracle = antichain;
    oracle.subsumption = false;

    const VerifyResult fast = verify_pte(model, antichain);
    const VerifyResult naive = verify_pte(model, oracle);
    ASSERT_NE(naive.status, VerifyStatus::kOutOfBudget) << naive.summary();
    ASSERT_NE(fast.status, VerifyStatus::kOutOfBudget) << fast.summary();
    // The property: the stores agree on the verdict.  (In particular the
    // antichain must not have dropped a state from which the oracle can
    // reach a violation.)
    EXPECT_EQ(fast.status, naive.status)
        << "antichain: " << fast.summary() << "\noracle: " << naive.summary();
    // Subsumption only prunes — it must never store more than the
    // equality-dedup oracle.
    EXPECT_LE(fast.states_stored, naive.states_stored);
    if (fast.status == VerifyStatus::kViolation) {
      ++violations_seen;
      ASSERT_TRUE(fast.counterexample.has_value());
      EXPECT_EQ(fast.counterexample->kind, naive.counterexample->kind);
      // Both counterexamples concretize and replay in the real engine.
      const ReplayResult replay =
          replay_counterexample(spec.verify_input(), *fast.counterexample);
      EXPECT_TRUE(replay.reproduced) << fast.counterexample->str();
    }
  }
  // The trial mix must actually exercise the violating path.
  EXPECT_GE(violations_seen, 1);
}

// ---------------------------------------------------------------------------
// Parallel determinism
// ---------------------------------------------------------------------------

std::string fingerprint(const VerifyResult& r) {
  std::string fp = r.summary();
  if (r.counterexample.has_value()) fp += "\n" + r.counterexample->str();
  return fp;
}

TEST(ParallelChecker, BitIdenticalAcrossThreadCounts) {
  for (const bool broken : {false, true}) {
    campaign::ScenarioSpec spec;
    spec.name = "laser";
    spec.config = core::PatternConfig::laser_tracheotomy();
    spec.mode = campaign::RunMode::kVerify;
    if (broken) spec.dwell_bound = 30.0;
    const CompiledModel model = compile_model(spec.verify_input());
    VerifyOptions opt;
    opt.max_losses = 1;
    opt.max_injections = 1;
    std::string reference;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{5}}) {
      opt.threads = threads;
      const VerifyResult r = verify_pte(model, opt);
      if (threads == 1)
        reference = fingerprint(r);
      else
        EXPECT_EQ(fingerprint(r), reference) << "threads=" << threads;
    }
    ASSERT_FALSE(reference.empty());
  }
}

TEST(ParallelChecker, BudgetCutoffIsDeterministicAcrossThreads) {
  // A budget that lands mid-round must truncate the same canonical
  // prefix at every thread count.
  campaign::ScenarioSpec spec;
  spec.name = "laser";
  spec.config = core::PatternConfig::laser_tracheotomy();
  spec.mode = campaign::RunMode::kVerify;
  const CompiledModel model = compile_model(spec.verify_input());
  VerifyOptions opt;
  opt.max_losses = 1;
  opt.max_injections = 1;
  opt.max_states = 137;  // deliberately mid-round
  std::string reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
    opt.threads = threads;
    const VerifyResult r = verify_pte(model, opt);
    EXPECT_EQ(r.status, VerifyStatus::kOutOfBudget);
    if (threads == 1)
      reference = fingerprint(r);
    else
      EXPECT_EQ(fingerprint(r), reference);
  }
}

}  // namespace
}  // namespace ptecps::verify
