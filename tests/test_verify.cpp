// Tests for the exhaustive PTE verifier: DBM zone algebra, model
// compilation of the pattern automata, the laser-tracheotomy proof, and
// counterexample extraction + engine replay on broken variants.
#include <gtest/gtest.h>

#include "campaign/context.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "core/config.hpp"
#include "core/events.hpp"
#include "verify/checker.hpp"
#include "verify/model.hpp"
#include "verify/replay.hpp"
#include "verify/zone.hpp"

namespace ptecps::verify {
namespace {

using core::PatternConfig;

// ---------------------------------------------------------------------------
// Zone algebra
// ---------------------------------------------------------------------------

TEST(Zone, PointUpConstrainReset) {
  Zone z(2);  // clocks x1, x2
  EXPECT_FALSE(z.is_empty());
  // The initial point: x1 = x2 = 0.
  EXPECT_TRUE(z.contains({0.0, 0.0}));
  EXPECT_FALSE(z.contains({1.0, 0.0}));
  z.up();  // both advance together
  EXPECT_TRUE(z.contains({3.5, 3.5}));
  EXPECT_FALSE(z.contains({3.5, 2.0}));  // difference must stay 0
  z.constrain(1, 0, Bound::le(5.0));     // x1 <= 5
  EXPECT_TRUE(z.contains({5.0, 5.0}));
  EXPECT_FALSE(z.contains({6.0, 6.0}));
  z.reset(2);  // x2 := 0
  EXPECT_TRUE(z.contains({4.0, 0.0}));
  EXPECT_FALSE(z.contains({4.0, 1.0}));
  z.up();
  // Now x1 - x2 in [0, 5].
  EXPECT_TRUE(z.contains({7.0, 3.0}));
  EXPECT_FALSE(z.contains({9.0, 2.0}));
}

TEST(Zone, EmptinessAndSubset) {
  Zone z(1);
  z.up();
  Zone small = z;
  small.constrain(1, 0, Bound::le(2.0));
  EXPECT_TRUE(small.subset_of(z));
  EXPECT_FALSE(z.subset_of(small));
  Zone dead = small;
  dead.constrain(0, 1, Bound::le(-3.0));  // x1 >= 3 contradicts x1 <= 2
  EXPECT_TRUE(dead.is_empty());
}

TEST(Zone, StrictBoundsSplitExactly) {
  Zone z(1);
  z.up();
  Zone ge = z, lt = z;
  ge.constrain(0, 1, Bound::le(-5.0));  // x1 >= 5
  lt.constrain(1, 0, Bound::lt(5.0));   // x1 < 5
  EXPECT_FALSE(ge.is_empty());
  EXPECT_FALSE(lt.is_empty());
  Zone both = ge;
  both.intersect(lt);
  EXPECT_TRUE(both.is_empty());  // x1 >= 5 and x1 < 5 cannot meet
}

TEST(Zone, DownAndFreeInvertForward) {
  // Forward: up; x1 >= 3; reset x2.  Backward from the result must
  // reach the initial point again.
  Zone fwd(2);
  fwd.up();
  fwd.constrain(0, 1, Bound::le(-3.0));
  fwd.reset(2);
  Zone back = fwd;
  back.free(2);
  back.constrain(0, 1, Bound::le(-3.0));  // the guard
  back.down();
  EXPECT_TRUE(back.contains({0.0, 0.0}));
}

TEST(Zone, SomePointRespectsBounds) {
  Zone z(2);
  z.up();
  z.constrain(0, 1, Bound::le(-2.0));  // x1 >= 2
  z.constrain(1, 0, Bound::le(4.0));   // x1 <= 4
  z.reset(2);
  const std::vector<double> p = z.some_point();
  ASSERT_EQ(p.size(), 2u);
  EXPECT_TRUE(z.contains(p));
  EXPECT_GE(p[0], 2.0);
  EXPECT_LE(p[0], 4.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

// ---------------------------------------------------------------------------
// Model compilation
// ---------------------------------------------------------------------------

campaign::ScenarioSpec laser_spec() {
  campaign::ScenarioSpec spec;
  spec.name = "laser";
  spec.config = PatternConfig::laser_tracheotomy();
  spec.mode = campaign::RunMode::kVerify;
  return spec;
}

TEST(VerifyModel, CompilesLaserPatternSystem) {
  const VerifyInput input = laser_spec().verify_input();
  const CompiledModel model = compile_model(input);
  ASSERT_EQ(model.automata.size(), 3u);  // supervisor + participant + initializer
  // The supervisor's two lease deadlines are the only now-plus targets.
  ASSERT_EQ(model.deadlines.size(), 2u);
  EXPECT_EQ(model.deadlines[0].automaton, 0u);
  EXPECT_EQ(model.deadlines[1].automaton, 0u);
  // Clock layout: 3 dwell + 2 deadline + 2*2 entity + 8 message slots.
  EXPECT_EQ(model.clocks.count, 3u + 2u + 4u + 8u);
  EXPECT_GT(model.max_constant, 44.0);  // covers the Theorem 1 bound
  EXPECT_EQ(model.stimuli.size(), 2u);  // surgeon request + cancel
  // Toggleable inputs: the ApprovalCondition (collapse + recovery) and
  // the participant's ParticipationCondition (collapse).
  ASSERT_EQ(model.inputs.size(), 2u);
  EXPECT_EQ(model.inputs[0].values.size(), 2u);  // {1.0, threshold - 1}
  EXPECT_EQ(model.toggles.size(), 3u);
}

TEST(VerifyModel, RejectsOutOfFragmentAutomata) {
  VerifyInput input = laser_spec().verify_input();
  // Give the participant's variable a nonzero rate somewhere: no longer
  // a constant input, not a clock either.
  input.automata[1].set_flow(0, hybrid::Flow{}.rate(0, 0.5));
  EXPECT_THROW((void)compile_model(input), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The paper's claim: PTE rules hold under all bounded loss interleavings
// ---------------------------------------------------------------------------

TEST(VerifyPte, LaserTracheotomyProvedUnderBoundedLoss) {
  const VerifyInput input = laser_spec().verify_input();
  const CompiledModel model = compile_model(input);
  VerifyOptions opt;
  opt.max_losses = 2;
  opt.max_injections = 2;
  const VerifyResult result = verify_pte(model, opt);
  EXPECT_EQ(result.status, VerifyStatus::kProved) << result.summary();
  EXPECT_GT(result.states_explored, 100u);
  EXPECT_FALSE(result.counterexample.has_value());
}

TEST(VerifyPte, LoweredDwellCeilingYieldsReplayableCounterexample) {
  // Deliberately broken variant: judge the same system against a dwell
  // ceiling below the ventilator's worst-case occupancy.  The verifier
  // must find the excursion and the trace must replay to the same
  // violation through a real engine + monitor.
  campaign::ScenarioSpec spec = laser_spec();
  spec.dwell_bound = 30.0;  // < T^max_run,1 + T_exit,1 = 41 s
  const VerifyInput input = spec.verify_input();
  const CompiledModel model = compile_model(input);
  VerifyOptions opt;
  opt.max_losses = 1;
  opt.max_injections = 1;
  const VerifyResult result = verify_pte(model, opt);
  ASSERT_EQ(result.status, VerifyStatus::kViolation) << result.summary();
  ASSERT_TRUE(result.counterexample.has_value());
  const Counterexample& cx = *result.counterexample;
  EXPECT_EQ(cx.kind, core::PteViolationKind::kDwellBound);
  EXPECT_EQ(cx.entity, 1u);  // the ventilator outlasts the lowered ceiling
  EXPECT_GT(cx.time, 30.0);

  const ReplayResult replay = replay_counterexample(input, cx);
  EXPECT_TRUE(replay.reproduced) << replay.summary() << "\n" << cx.str();
  EXPECT_EQ(replay.unmatched_sends, 0u) << replay.summary();
}

TEST(VerifyPte, ImpatientSupervisorAblationBreaksOrdering) {
  // The deadline_wait=false ablation (unwinding after T^max_wait instead
  // of out-waiting D_i) is unsound once an exit confirmation is lost —
  // the §V / bench_scenarios S4 narrative, now as a theorem.
  campaign::ScenarioSpec spec = laser_spec();
  spec.deadline_wait = false;
  const VerifyInput input = spec.verify_input();
  const CompiledModel model = compile_model(input);
  VerifyOptions opt;
  opt.max_losses = 1;
  opt.max_injections = 1;
  const VerifyResult result = verify_pte(model, opt);
  ASSERT_EQ(result.status, VerifyStatus::kViolation) << result.summary();
  const Counterexample& cx = *result.counterexample;
  // The embedding breaks: either safeguard or order, depending on which
  // interleaving the search hits first.
  EXPECT_NE(cx.kind, core::PteViolationKind::kDwellBound);
  const ReplayResult replay = replay_counterexample(input, cx);
  EXPECT_TRUE(replay.reproduced) << replay.summary() << "\n" << cx.str();
}

TEST(VerifyPte, NoLossNeededMeansProofWithZeroBudget) {
  // With no losses and no injections the system never leaves Fall-Back:
  // trivially safe, and the search space collapses to a handful of
  // states.
  const VerifyInput input = laser_spec().verify_input();
  const CompiledModel model = compile_model(input);
  VerifyOptions opt;
  opt.max_losses = 0;
  opt.max_injections = 0;
  const VerifyResult result = verify_pte(model, opt);
  EXPECT_EQ(result.status, VerifyStatus::kProved) << result.summary();
  EXPECT_LT(result.states_stored, 10u);
}

// ---------------------------------------------------------------------------
// Campaign integration
// ---------------------------------------------------------------------------

TEST(VerifyCampaign, VerifyModeProducesVerificationOutcome) {
  campaign::ScenarioSpec spec = laser_spec();
  spec.verify.max_losses = 1;
  spec.verify.max_injections = 1;
  campaign::CampaignOptions copt;
  copt.threads = 1;
  const campaign::CampaignReport report = campaign::CampaignRunner(copt).run(spec);
  ASSERT_EQ(report.scenarios.size(), 1u);
  ASSERT_TRUE(report.scenarios[0].verification.has_value());
  EXPECT_EQ(report.scenarios[0].verification->status, VerifyStatus::kProved);
  EXPECT_EQ(report.specs_proved, 1u);
  EXPECT_EQ(report.total_runs, 0u);  // kVerify contributes no Monte-Carlo runs
  EXPECT_TRUE(report.ok());
  EXPECT_NE(report.json().find("\"status\": \"proved\""), std::string::npos);
}

TEST(VerifyCampaign, VerifySpecThreadsReachTheChecker) {
  // Same proof through the campaign API on 2 checker shards; the
  // determinism guarantee makes the outcome identical to 1 thread.
  campaign::ScenarioSpec spec = laser_spec();
  spec.verify.max_losses = 1;
  spec.verify.max_injections = 1;
  spec.verify.threads = 2;
  campaign::CampaignOptions copt;
  copt.threads = 1;
  const campaign::CampaignReport report = campaign::CampaignRunner(copt).run(spec);
  ASSERT_TRUE(report.scenarios[0].verification.has_value());
  EXPECT_EQ(report.scenarios[0].verification->status, VerifyStatus::kProved);
  EXPECT_TRUE(report.ok());
}

TEST(VerifyCampaign, BothModeRunsSeedsAndProof) {
  campaign::ScenarioSpec spec = laser_spec();
  spec.mode = campaign::RunMode::kBoth;
  spec.horizon = 40.0;
  spec.seeds = {1, 2};
  spec.verify.max_losses = 1;
  spec.verify.max_injections = 1;
  spec.drive = [](campaign::SimulationContext& ctx) {
    ctx.run_until(14.0);
    ctx.inject(2, core::events::cmd_request(2));
    ctx.run_until(40.0);
  };
  campaign::CampaignOptions copt;
  copt.threads = 1;
  const campaign::CampaignReport report = campaign::CampaignRunner(copt).run(spec);
  EXPECT_EQ(report.total_runs, 2u);
  ASSERT_TRUE(report.scenarios[0].verification.has_value());
  EXPECT_EQ(report.scenarios[0].verification->status, VerifyStatus::kProved);
  // The scripted request at 14 s opens a ~44 s session; the 40 s horizon
  // cuts it mid-flight — exactly one right-censored session per run,
  // pinned in the report and its JSON.
  EXPECT_EQ(report.censored_sessions, 2u);
  EXPECT_NE(report.json().find("\"censored_sessions\": 2"), std::string::npos);
}

}  // namespace
}  // namespace ptecps::verify
