// The result cache under contention — the daemon's reality: one cache
// directory shared by a worker pool in-process and by several processes
// on disk.  Correctness here is "atomic publish, degrade to miss": a
// reader never observes a torn entry, simultaneous same-key stores leave
// one valid winner, gc racing a store never corrupts, and a corrupt
// entry costs a recompute, never a wrong answer.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/cache.hpp"
#include "api/service.hpp"
#include "scenarios/registry.hpp"
#include "scenarios/serialize.hpp"

namespace ptecps::api {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("ptecps-conc-" + name);
  fs::remove_all(dir);
  return dir.string();
}

Job smoke_job(const std::string& name) {
  Job job = Job::for_scenario(name);
  job.smoke = true;
  return job;
}

scenarios::ScenarioParams params_of(const std::string& name) {
  return scenarios::export_document(*scenarios::find_scenario(name)).params;
}

util::Json result_payload(int marker) {
  util::Json j = util::Json::object();
  j.set("version", kApiVersion);
  j.set("ok", true);
  j.set("scenario", "stress");
  j.set("verdict", "proved");
  j.set("marker", marker);
  j.set("errors", util::Json::array());
  return j;
}

// ---------------------------------------------------------------------------
// Threads sharing one ResultCache
// ---------------------------------------------------------------------------

TEST(CacheConcurrent, SimultaneousSameKeyStoresLeaveOneValidEntry) {
  const ResultCache cache({fresh_dir("same-key")});
  const std::string key = cache.result_key(params_of("laser-tracheotomy"), true);

  constexpr int kThreads = 8;
  std::atomic<int> go{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t)
    writers.emplace_back([&, t] {
      go.fetch_add(1);
      while (go.load() < kThreads) {  // all start as close together as possible
      }
      for (int round = 0; round < 50; ++round)
        cache.store_result(key, "stress", result_payload(t));
    });
  for (std::thread& w : writers) w.join();

  // Whoever won the last rename, the entry is whole and parses.
  const std::optional<util::Json> loaded = cache.load_result(key);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->at("verdict").as_string(), "proved");
  EXPECT_EQ(cache.stats().results, 1u);
}

TEST(CacheConcurrent, ManyThreadsOneServiceSharedCache) {
  // The daemon's exact shape: one Service, one cache dir, a pool of
  // threads running the same jobs.  Every result must agree and the
  // cache must end up with exactly the distinct entries.
  const std::string dir = fresh_dir("pool");
  ServiceOptions options;
  options.cache_dir = dir;
  const Service service(options);

  constexpr int kThreads = 8;
  std::vector<std::string> verdicts(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t)
    pool.emplace_back([&, t] {
      const char* name = (t % 2 == 0) ? "laser-tracheotomy" : "adversarial-drop";
      Job job = smoke_job(name);
      job.tuning.threads = 1;
      verdicts[t] = service.run(job).verdict;
    });
  for (std::thread& w : pool) w.join();

  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(verdicts[t], t % 2 == 0 ? "proved" : "violation") << t;
  // Two distinct scenarios → two result entries, however the races fell.
  EXPECT_EQ(ResultCache({dir}).stats().results, 2u);
}

TEST(CacheConcurrent, GcRacingStoresNeverCorrupts) {
  // A tiny cap makes every store trigger eviction while other threads
  // keep storing — the mtime-LRU gc and the tmp+rename publish must
  // never interleave into a torn or unparseable entry.
  ResultCache::Options options;
  options.dir = fresh_dir("gc-race");
  options.max_bytes = 2048;  // a few entries at most
  const ResultCache cache(options);
  const scenarios::ScenarioParams base = params_of("laser-tracheotomy");

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      for (int round = 0; round < 40; ++round) {
        scenarios::ScenarioParams p = base;
        p.seed_base = static_cast<std::uint64_t>(t * 1000 + round);  // distinct keys
        cache.store_result(cache.result_key(p, true), "stress", result_payload(t));
        if (round % 8 == 0) cache.gc();
      }
    });
  for (std::thread& w : threads) w.join();

  cache.gc();
  EXPECT_LE(cache.stats().bytes, 2048u);
  // Every surviving entry is loadable — a torn file would load as
  // nullopt here yet still be counted by stats(), failing the next loop.
  std::size_t loadable = 0;
  for (int t = 0; t < 4; ++t)
    for (int round = 0; round < 40; ++round) {
      scenarios::ScenarioParams p = base;
      p.seed_base = static_cast<std::uint64_t>(t * 1000 + round);
      if (cache.load_result(cache.result_key(p, true)).has_value()) ++loadable;
    }
  EXPECT_EQ(loadable, cache.stats().results);
}

TEST(CacheConcurrent, CorruptEntriesDegradeToMissUnderContention) {
  const std::string dir = fresh_dir("corrupt");
  const ResultCache cache({dir});
  const std::string key = cache.result_key(params_of("laser-tracheotomy"), true);
  cache.store_result(key, "stress", result_payload(0));

  // One thread keeps truncating/garbling the file on disk while readers
  // hammer it: every load is either a full hit or a clean miss.
  std::atomic<bool> stop{false};
  std::thread vandal([&] {
    const fs::path file = fs::path(dir) / "results" / (key + ".json");
    while (!stop.load()) {
      std::ofstream(file, std::ios::trunc) << "{\"torn\":";
      std::ofstream(file, std::ios::trunc) << "not json at all";
    }
  });
  std::atomic<int> hits{0}, misses{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t)
    readers.emplace_back([&] {
      for (int round = 0; round < 200; ++round) {
        const std::optional<util::Json> loaded = cache.load_result(key);
        if (!loaded.has_value()) {
          ++misses;
        } else {
          EXPECT_EQ(loaded->at("verdict").as_string(), "proved");
          ++hits;
        }
      }
    });
  for (std::thread& r : readers) r.join();
  stop.store(true);
  vandal.join();
  EXPECT_EQ(hits + misses, 800);
  EXPECT_GT(misses.load(), 0);  // the vandal did land
}

// ---------------------------------------------------------------------------
// Two processes sharing one cache directory
// ---------------------------------------------------------------------------

TEST(CacheConcurrent, TwoProcessesShareOneCacheDir) {
  const std::string dir = fresh_dir("two-proc");

  // Parent and child run the same job against the same cache dir at the
  // same time; whoever loses the publish race still computed the same
  // bytes, so both must see the same verdict and one entry remains.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: its exit code carries the outcome (gtest asserts don't
    // propagate across fork).
    ServiceOptions options;
    options.cache_dir = dir;
    Job job = smoke_job("laser-tracheotomy");
    job.tuning.threads = 1;
    const JobResult r = Service(options).run(job);
    _exit(r.ok && r.verdict == "proved" ? 0 : 1);
  }

  ServiceOptions options;
  options.cache_dir = dir;
  Job job = smoke_job("laser-tracheotomy");
  job.tuning.threads = 1;
  const JobResult mine = Service(options).run(job);
  EXPECT_TRUE(mine.ok);
  EXPECT_EQ(mine.verdict, "proved");

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  // The second read — whoever stored — is a hit with the same verdict.
  const JobResult warm = Service(options).run(job);
  EXPECT_EQ(warm.cache.hits, 1u);
  EXPECT_EQ(warm.verdict, "proved");
  EXPECT_EQ(ResultCache({dir}).stats().results, 1u);
}

}  // namespace
}  // namespace ptecps::api
