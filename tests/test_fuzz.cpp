// The scenario-space fuzzing subsystem: grammar validity over the
// quantized grid, the sketch-relevant projection, content-addressed
// corpus persistence, the delta-debugging minimizer (idempotence by
// construction), the injected-disagreement find-and-minimize loop, and
// the guided-beats-blind acceptance comparison.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/job.hpp"
#include "api/service.hpp"
#include "attack/attacker.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/grammar.hpp"
#include "fuzz/minimize.hpp"
#include "scenarios/builder.hpp"
#include "scenarios/serialize.hpp"
#include "sim/random.hpp"

namespace ptecps::fuzz {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const char* tag) {
  const fs::path dir =
      fs::temp_directory_path() / (std::string("pte_fuzz_test_") + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Small grammar so test campaigns stay fast: the same reduced grid the
/// guided-vs-blind comparison is measured on.
GrammarOptions small_grammar() {
  GrammarOptions g;
  g.max_remotes = 2;
  g.config_pool = 1;
  return g;
}

// ---------------------------------------------------------------------------
// Grammar
// ---------------------------------------------------------------------------

TEST(FuzzGrammar, GeneratedDocumentsAreValidCanonicalAndSparseRoundTrip) {
  sim::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const scenarios::ScenarioDocument doc = generate(rng);
    // Canonical naming: the name is derived from the content, so
    // re-normalizing is a no-op.
    scenarios::ScenarioParams renamed = doc.params;
    normalize_name(renamed);
    EXPECT_EQ(renamed.name, doc.params.name);
    // Every candidate builds (the grammar's validity gate) ...
    EXPECT_NO_THROW((void)scenarios::build(doc.params)) << doc.params.name;
    // ... and survives the sparse writer round trip bit-for-bit.
    const scenarios::ScenarioDocument back =
        scenarios::document_from_json(scenarios::to_json_sparse(doc));
    EXPECT_EQ(back, doc) << doc.params.name;
  }
}

TEST(FuzzGrammar, MutationChainStaysValid) {
  sim::Rng rng(11);
  scenarios::ScenarioDocument doc = generate(rng);
  for (int i = 0; i < 40; ++i) {
    doc = mutate(rng, doc);
    EXPECT_NO_THROW((void)scenarios::build(doc.params)) << doc.params.name;
    scenarios::ScenarioParams renamed = doc.params;
    normalize_name(renamed);
    EXPECT_EQ(renamed.name, doc.params.name);
  }
}

TEST(FuzzGrammar, ReachesEveryAttackerFamily) {
  sim::Rng rng(3);
  std::set<attack::AttackerModel::Kind> seen;
  for (int i = 0; i < 400 && seen.size() < 7; ++i)
    seen.insert(generate(rng).params.attacker.kind);
  EXPECT_EQ(seen.size(), 7u)
      << "the grammar should draw all seven attacker kinds (incl. kNone)";
}

TEST(FuzzGrammar, ProjectionDropsSamplerOnlyKnobsAndKeepsProverOnes) {
  sim::Rng rng(5);
  scenarios::ScenarioDocument doc = generate(rng);
  const std::string base = prover_projection(doc.params);

  // Sampler-only: seeds, horizon, stimulus script, channel timing.
  scenarios::ScenarioParams p = doc.params;
  p.seed_base += 1000;
  p.seed_count += 1;
  p.horizon += 30.0;
  EXPECT_EQ(prover_projection(p), base);
  p = doc.params;
  p.script.actions.clear();
  EXPECT_EQ(prover_projection(p), base);
  p = doc.params;
  p.channel.delay += 0.003;
  p.channel.delay_jitter += 0.002;
  EXPECT_EQ(prover_projection(p), base);
  // A pure cap is not a deployment property.
  p = doc.params;
  p.verify.max_states += 12345;
  EXPECT_EQ(prover_projection(p), base);

  // Prover-relevant: the timing configuration and the embedding toggles.
  p = doc.params;
  p.with_lease = !p.with_lease;
  EXPECT_NE(prover_projection(p), base);
  p = doc.params;
  sim::Rng other(999);
  p.config = scenarios::synthesize_params(other, {3}).config;
  EXPECT_NE(prover_projection(p), base);
}

TEST(FuzzGrammar, BucketCallsBudgetlessAttackersCalm) {
  sim::Rng rng(13);
  scenarios::ScenarioParams p = generate(rng).params;
  p.attacker = attack::AttackerModel::bernoulli(0.3);
  p.attacker.with_intensity(1.0).with_budget(0);  // no prover ammunition
  EXPECT_NE(structure_bucket(p).find("|calm|"), std::string::npos);
  p.attacker.with_budget(2);
  EXPECT_NE(structure_bucket(p).find("|attacked|"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

TEST(FuzzCorpus, ContentDedupAndDirectoryPersistence) {
  sim::Rng rng(17);
  Corpus corpus;
  std::vector<std::string> errors;
  for (int i = 0; i < 12; ++i) {
    CorpusEntry e;
    e.doc = generate(rng);
    corpus.add(std::move(e));
  }
  const std::size_t unique = corpus.size();
  ASSERT_GT(unique, 0u);

  // Re-adding the same content is a dedup reject, not a second entry.
  CorpusEntry dup;
  dup.doc = corpus.at(0).doc;
  EXPECT_EQ(corpus.add(std::move(dup)), nullptr);
  EXPECT_EQ(corpus.size(), unique);
  EXPECT_GE(corpus.dedup_rejects(), 1u);

  const fs::path dir = fresh_dir("corpus");
  EXPECT_EQ(corpus.save(dir.string(), errors), unique);
  EXPECT_TRUE(errors.empty());

  Corpus reloaded;
  EXPECT_EQ(reloaded.load(dir.string(), errors), unique);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(reloaded.size(), unique);
  for (std::size_t i = 0; i < unique; ++i)
    EXPECT_TRUE(reloaded.contains(corpus.at(i).digest));
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------------

TEST(FuzzMinimize, IdempotentUnderAPureStructuralPredicate) {
  sim::Rng rng(19);
  // A predicate that survives reduction: the attacker family itself.
  const Predicate pred = [](const scenarios::ScenarioDocument& d) {
    return d.params.attacker.kind == attack::AttackerModel::Kind::kSustainedJammer;
  };
  int checked = 0;
  for (int i = 0; i < 200 && checked < 3; ++i) {
    scenarios::ScenarioDocument doc = generate(rng);
    if (!pred(doc)) continue;
    ++checked;
    const MinimizeResult once = minimize(doc, pred);
    const MinimizeResult twice = minimize(once.doc, pred);
    EXPECT_EQ(twice.doc, once.doc) << "minimize must be a fixed point";
    EXPECT_TRUE(pred(once.doc));
    EXPECT_LE(rendered_lines(once.doc), rendered_lines(doc));
  }
  ASSERT_EQ(checked, 3) << "grammar never drew a sustained attacker";
}

TEST(FuzzMinimize, RejectsANonReproducingInput) {
  sim::Rng rng(23);
  const scenarios::ScenarioDocument doc = generate(rng);
  EXPECT_THROW(minimize(doc, [](const scenarios::ScenarioDocument&) { return false; }),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Campaigns
// ---------------------------------------------------------------------------

FuzzOptions small_campaign(std::uint64_t seed, std::size_t execs) {
  FuzzOptions o;
  o.seed = seed;
  o.max_execs = execs;
  o.batch = 8;
  o.threads = 2;
  o.minimize = false;
  o.grammar = small_grammar();
  return o;
}

TEST(FuzzCampaign, DeterministicAtAFixedSeed) {
  const api::Service service;
  const FuzzReport a = Fuzzer(service, small_campaign(29, 24)).run();
  const FuzzReport b = Fuzzer(service, small_campaign(29, 24)).run();
  EXPECT_EQ(a.stats.execs, b.stats.execs);
  EXPECT_EQ(a.stats.distinct_sketches, b.stats.distinct_sketches);
  EXPECT_EQ(a.stats.coverage_bits, b.stats.coverage_bits);
  EXPECT_EQ(a.stats.flip_regions, b.stats.flip_regions);
  EXPECT_EQ(a.stats.proved, b.stats.proved);
  EXPECT_EQ(a.stats.violated, b.stats.violated);
  EXPECT_EQ(a.stats.corpus_size, b.stats.corpus_size);
}

TEST(FuzzCampaign, SketchSignalsAreThreadCountInvariant) {
  const api::Service service;
  FuzzOptions one = small_campaign(31, 16);
  one.threads = 1;
  FuzzOptions three = small_campaign(31, 16);
  three.threads = 3;
  const FuzzReport a = Fuzzer(service, one).run();
  const FuzzReport b = Fuzzer(service, three).run();
  EXPECT_EQ(a.stats.distinct_sketches, b.stats.distinct_sketches);
  EXPECT_EQ(a.stats.coverage_bits, b.stats.coverage_bits);
  EXPECT_EQ(a.stats.flip_regions, b.stats.flip_regions);
  EXPECT_EQ(a.stats.proved, b.stats.proved);
  EXPECT_EQ(a.stats.violated, b.stats.violated);
}

TEST(FuzzCampaign, CoverageCurveIsMonotone) {
  const api::Service service;
  const FuzzReport r = Fuzzer(service, small_campaign(37, 32)).run();
  ASSERT_FALSE(r.stats.coverage_curve.empty());
  for (std::size_t i = 1; i < r.stats.coverage_curve.size(); ++i) {
    EXPECT_GE(r.stats.coverage_curve[i].execs, r.stats.coverage_curve[i - 1].execs);
    EXPECT_GE(r.stats.coverage_curve[i].coverage_bits,
              r.stats.coverage_curve[i - 1].coverage_bits);
    EXPECT_GE(r.stats.coverage_curve[i].distinct_sketches,
              r.stats.coverage_curve[i - 1].distinct_sketches);
    EXPECT_GE(r.stats.coverage_curve[i].flip_regions,
              r.stats.coverage_curve[i - 1].flip_regions);
  }
  const CoveragePoint& last = r.stats.coverage_curve.back();
  EXPECT_EQ(last.distinct_sketches, r.stats.distinct_sketches);
  EXPECT_EQ(last.coverage_bits, r.stats.coverage_bits);
}

// The tentpole acceptance criterion: with identical exec budgets and
// seed, coverage-guided scheduling reaches strictly more distinct
// discrete-state fingerprint sketches AND at least one more verdict-flip
// region than --blind generation.  Everything here is deterministic
// (fixed seed, no wall-clock budget, thread-count-invariant sketches),
// so the margin is stable — the companion bench (bench_fuzz.cpp) reports
// the multi-seed picture.
TEST(FuzzCampaign, GuidedBeatsBlindAtEqualBudgetAndSeed) {
  const api::Service service;
  FuzzOptions guided = small_campaign(5, 96);
  FuzzOptions blind = small_campaign(5, 96);
  blind.guided = false;
  const FuzzReport g = Fuzzer(service, guided).run();
  const FuzzReport b = Fuzzer(service, blind).run();
  EXPECT_EQ(g.stats.execs, b.stats.execs) << "identical budgets by construction";
  EXPECT_GT(g.stats.distinct_sketches, b.stats.distinct_sketches);
  EXPECT_GE(g.stats.flip_regions, b.stats.flip_regions + 1);
  // Guided spends its budget on projection-fresh cells, so it must have
  // rejected candidates on the way (blind dedups content digests only).
  EXPECT_GT(g.stats.dedup_skipped, 0u);
}

TEST(FuzzCampaign, InjectedDisagreementIsFoundAndMinimizedToATinyReproducer) {
  const api::Service service;
  FuzzOptions o = small_campaign(41, 48);
  o.minimize = true;
  const fs::path artifacts = fresh_dir("artifacts");
  o.artifact_dir = artifacts.string();
  // The mutation-testing hook: pretend the sampler disagrees on every
  // sustained-jammer scenario.  The minimizer must preserve the property
  // while shrinking everything else.
  o.fault_hook = [](const scenarios::ScenarioParams& p) {
    return p.attacker.kind == attack::AttackerModel::Kind::kSustainedJammer;
  };
  const FuzzReport r = Fuzzer(service, o).run();
  ASSERT_FALSE(r.findings.empty()) << "48 execs should draw >= 1 sustained attacker";
  for (const FuzzFinding& f : r.findings) {
    EXPECT_EQ(f.kind, FuzzFinding::Kind::kDisagreement);
    EXPECT_TRUE(f.minimized);
    EXPECT_EQ(f.doc.params.attacker.kind, attack::AttackerModel::Kind::kSustainedJammer);
    EXPECT_LE(f.doc_lines, 25u) << rendered_text(f.doc);
    // The reproducer carries the prover's verdict as its expectation, so
    // `pte matrix` over the checked-in file asserts it forever after.
    ASSERT_TRUE(f.doc.expected.has_value());
    api::Job job = api::Job::for_document(f.doc);
    job.threads = 2;
    const api::JobResult check = service.run(job);
    EXPECT_TRUE(check.expected_match) << f.digest;
    // And the artifact on disk round-trips to the same document.
    const fs::path file = artifacts / (f.digest.substr(0, 16) + ".json");
    ASSERT_TRUE(fs::exists(file));
    std::ifstream in(file);
    std::stringstream text;
    text << in.rdbuf();
    EXPECT_EQ(scenarios::document_from_text(text.str()), f.doc);
  }
  fs::remove_all(artifacts);
}

TEST(FuzzCampaign, PersistentCorpusReplaySeedsTheNextCampaign) {
  const api::Service service;
  const fs::path dir = fresh_dir("campaign_corpus");
  FuzzOptions first = small_campaign(43, 24);
  first.corpus_dir = dir.string();
  const FuzzReport a = Fuzzer(service, first).run();
  EXPECT_TRUE(a.errors.empty());
  ASSERT_GT(a.stats.corpus_size, 0u);

  // Second campaign over the same directory with headroom beyond the
  // replayed corpus: the saved entries replay first, and content dedup
  // then blocks the generator from re-drawing those same documents.
  FuzzOptions second = small_campaign(43, 48);
  second.corpus_dir = dir.string();
  const FuzzReport b = Fuzzer(service, second).run();
  EXPECT_TRUE(b.errors.empty());
  EXPECT_GE(b.stats.corpus_size, a.stats.corpus_size);
  EXPECT_GT(b.stats.dedup_skipped, 0u)
      << "replayed documents must be rejected when re-drawn";
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ptecps::fuzz
