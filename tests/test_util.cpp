// Unit tests for the util substrate: text helpers, statistics, tables,
// CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/cli.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/text.hpp"

namespace ptecps::util {
namespace {

TEST(Text, CatConcatenatesStreamables) {
  EXPECT_EQ(cat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(cat(), "");
}

TEST(Text, FmtDoubleFixedPrecision) {
  EXPECT_EQ(fmt_double(1.5, 2), "1.50");
  EXPECT_EQ(fmt_double(-0.125, 3), "-0.125");
}

TEST(Text, FmtCompactStripsTrailingZeros) {
  EXPECT_EQ(fmt_compact(3.0), "3");
  EXPECT_EQ(fmt_compact(3.5), "3.5");
  EXPECT_EQ(fmt_compact(0.125), "0.125");
  EXPECT_EQ(fmt_compact(-0.0), "0");
}

TEST(Text, JoinAndSplitRoundTrip) {
  const std::vector<std::string> parts = {"a", "", "c"};
  EXPECT_EQ(join(parts, ","), "a,,c");
  EXPECT_EQ(split("a,,c", ','), parts);
  EXPECT_EQ(split("", ','), std::vector<std::string>{""});
}

TEST(Text, PadAligns) {
  EXPECT_EQ(pad("ab", 4), "ab  ");
  EXPECT_EQ(pad("ab", 4, true), "  ab");
  EXPECT_EQ(pad("abcde", 4), "abcde");  // never truncates
}

TEST(Text, ReplaceAll) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("x", "", "y"), "x");
}

TEST(Stats, RunningStatsMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(Stats, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, HistogramTracksOutOfRangeSeparately) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(9.9);
  h.add(-3.0);   // below range: counted as underflow, not in bin 0
  h.add(100.0);  // above range: counted as overflow, not in bin 4
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
  EXPECT_EQ(h.summary(), "n=4, in-range=2, underflow=1, overflow=1");
  // hi itself is out of range (bins cover [lo, hi)).
  h.add(10.0);
  EXPECT_EQ(h.overflow(), 2u);
  // The render footer names the out-of-range mass so it can't hide.
  EXPECT_NE(h.render().find("out-of-range: 1 below, 2 above"), std::string::npos);
}

TEST(Stats, MergeOrderIndependentAcrossRandomPartitions) {
  // Property: merging per-shard accumulators must give the same moments
  // regardless of partition shape and merge order (the campaign report
  // relies on this for thread-count-independent output), to within an
  // ulp-scale tolerance.
  std::vector<double> xs;
  std::uint64_t state = 0x9E3779B97F4A7C15ULL;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state % 10007) / 7.0 - 500.0;
  };
  for (int i = 0; i < 2000; ++i) xs.push_back(next());
  RunningStats reference;
  for (double x : xs) reference.add(x);

  for (std::size_t shards : {2u, 3u, 7u, 16u}) {
    std::vector<RunningStats> parts(shards);
    for (std::size_t i = 0; i < xs.size(); ++i)
      parts[(i * 2654435761u) % shards].add(xs[i]);
    // Merge in two different orders: forward fold and pairwise tree.
    RunningStats forward;
    for (const auto& p : parts) forward.merge(p);
    std::vector<RunningStats> tree = parts;
    while (tree.size() > 1) {
      std::vector<RunningStats> next_level;
      for (std::size_t i = 0; i + 1 < tree.size(); i += 2) {
        RunningStats m = tree[i];
        m.merge(tree[i + 1]);
        next_level.push_back(m);
      }
      if (tree.size() % 2 == 1) next_level.push_back(tree.back());
      tree = std::move(next_level);
    }
    for (const RunningStats* s : {&forward, &tree[0]}) {
      EXPECT_EQ(s->count(), reference.count());
      EXPECT_NEAR(s->mean(), reference.mean(), 1e-9 * std::fabs(reference.mean()) + 1e-9);
      EXPECT_NEAR(s->variance(), reference.variance(), 1e-7 * reference.variance() + 1e-9);
      EXPECT_DOUBLE_EQ(s->min(), reference.min());
      EXPECT_DOUBLE_EQ(s->max(), reference.max());
    }
  }
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(Table, RenderAlignsColumns) {
  TextTable t({"name", "value"});
  t.set_right_align(1);
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("alpha | "), std::string::npos);
  EXPECT_NE(out.find("------+"), std::string::npos);
  EXPECT_NE(out.find("   22"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, MarkdownMode) {
  TextTable t({"a", "b"});
  t.set_right_align(1);
  t.add_row({"x", "1"});
  const std::string md = t.render_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("| --- | ---: |"), std::string::npos);
}

TEST(Cli, ParsesOptionsFlagsAndPositional) {
  const char* argv[] = {"prog", "--loss", "0.3", "--verbose", "--n=5", "input.txt"};
  ArgParser args(6, argv, {"loss", "verbose", "n", "absent"});
  EXPECT_DOUBLE_EQ(args.get_double("loss", 0.0), 0.3);
  EXPECT_TRUE(args.has_flag("verbose"));
  EXPECT_EQ(args.get_int("n", 0), 5);
  EXPECT_EQ(args.get_int("absent", 7), 7);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.txt");
}

TEST(Cli, AcceptsNegativeNumericValues) {
  // Both "--name value" and "--name=value" spellings must carry a sign.
  const char* argv[] = {"prog", "--delta", "-1.5", "--k", "-3", "--eps=-2.25"};
  ArgParser args(6, argv, {"delta", "k", "eps"});
  EXPECT_DOUBLE_EQ(args.get_double("delta", 0.0), -1.5);
  EXPECT_EQ(args.get_int("k", 0), -3);
  EXPECT_DOUBLE_EQ(args.get_double("eps", 0.0), -2.25);
}

// Regression: malformed numeric values used to escape as uncaught
// std::stod/std::stoi exceptions (std::terminate, no flag named); they
// must exit(2) with a diagnostic naming the flag instead.
TEST(CliDeathTest, MalformedDoubleExitsCleanly) {
  const char* argv[] = {"prog", "--loss", "lots"};
  ArgParser args(3, argv, {"loss"});
  EXPECT_EXIT(args.get_double("loss", 0.0), ::testing::ExitedWithCode(2),
              "invalid value 'lots' for --loss");
}

TEST(CliDeathTest, TrailingGarbageIsRejectedNotTruncated) {
  // std::stod("1.5x") silently parses 1.5; the parser must not.
  const char* argv[] = {"prog", "--loss=1.5x", "--n=12q"};
  ArgParser args(3, argv, {"loss", "n"});
  EXPECT_EXIT(args.get_double("loss", 0.0), ::testing::ExitedWithCode(2),
              "invalid value '1.5x' for --loss");
  EXPECT_EXIT(args.get_int("n", 0), ::testing::ExitedWithCode(2),
              "invalid value '12q' for --n");
}

TEST(CliDeathTest, NegativeU64IsRejectedNotWrapped) {
  // std::stoull("-5") wraps to 2^64-5; the parser must reject the sign.
  const char* argv[] = {"prog", "--seeds", "-5"};
  ArgParser args(3, argv, {"seeds"});
  EXPECT_EXIT(args.get_u64("seeds", 0), ::testing::ExitedWithCode(2),
              "invalid value '-5' for --seeds");
}

TEST(CliDeathTest, OutOfRangeIntExitsCleanly) {
  const char* argv[] = {"prog", "--n=99999999999999999999"};
  ArgParser args(2, argv, {"n"});
  EXPECT_EXIT(args.get_int("n", 0), ::testing::ExitedWithCode(2),
              "invalid value '99999999999999999999' for --n");
}

// Regression: the permissive ancestor silently ignored unknown options,
// so "--seedz 5" ran the single-seed fallback without a word.  Unknown
// options must exit(2) naming the nearest known flags.
TEST(CliDeathTest, UnknownOptionExitsWithNearMissSuggestion) {
  const char* argv[] = {"prog", "--seedz", "5"};
  EXPECT_EXIT((ArgParser(3, argv, {"seeds", "threads"})), ::testing::ExitedWithCode(2),
              "unknown option --seedz \\(did you mean --seeds\\?\\)");
}

TEST(CliDeathTest, UnknownOptionEqualsFormIsAlsoRejected) {
  const char* argv[] = {"prog", "--treads=4"};
  EXPECT_EXIT((ArgParser(2, argv, {"seeds", "threads"})), ::testing::ExitedWithCode(2),
              "unknown option --treads \\(did you mean --threads\\?\\)");
}

TEST(CliDeathTest, UnknownOptionWithoutNearMissListsKnownFlags) {
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_EXIT((ArgParser(2, argv, {"seeds"})), ::testing::ExitedWithCode(2),
              "unknown option --bogus \\(known: --seeds\\)");
}

TEST(Cli, PrefixOfAKnownFlagIsSuggestedNotAccepted) {
  // "--seed" (a prefix typo of --seeds) must die, not half-match.
  const char* argv[] = {"prog", "--seed", "7"};
  EXPECT_EXIT((ArgParser(3, argv, {"seeds", "threads"})), ::testing::ExitedWithCode(2),
              "did you mean --seeds");
}

TEST(Require, MacrosThrowWithContext) {
  try {
    PTE_REQUIRE(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
  }
  EXPECT_THROW(PTE_CHECK(false, "internal"), std::logic_error);
}

}  // namespace
}  // namespace ptecps::util
