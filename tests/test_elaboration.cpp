// Unit + behavioral tests for the elaboration calculus (§IV-C):
// independence (Def. 2), simple automata (Def. 3), atomic & parallel
// elaboration, projection, verification — and the semantic guarantees
// (parent flow inside the child, child variables frozen outside).
#include <gtest/gtest.h>

#include "casestudy/ventilator.hpp"
#include "core/deployment.hpp"
#include "core/events.hpp"
#include "core/monitor.hpp"
#include "hybrid/elaboration.hpp"
#include "hybrid/engine.hpp"
#include "hybrid/independence.hpp"
#include "hybrid/structural.hpp"
#include "net/bridge.hpp"
#include "net/star_network.hpp"

namespace ptecps::hybrid {
namespace {

/// A simple one-location child with a ramping variable.
Automaton make_ramp_child(const std::string& name, const std::string& var) {
  Automaton a(name);
  const VarId v = a.add_var(var, 0.0);
  const LocId s = a.add_location(name + "_run");
  a.set_flow(s, Flow{}.rate(v, 1.0));
  a.add_initial_location(s);
  a.set_initial_data(InitialData::kAnyInInvariant);
  return a;
}

/// Parent: Idle --(?go)--> Busy --(dwell 5)--> Idle, one variable p
/// ramping in Busy.
Automaton make_parent() {
  Automaton a("parent");
  const VarId p = a.add_var("p", 0.0);
  const LocId idle = a.add_location("Idle");
  const LocId busy = a.add_location("Busy", /*risky=*/true);
  a.set_flow(busy, Flow{}.rate(p, 2.0));
  a.add_initial_location(idle);
  Edge go;
  go.src = idle;
  go.dst = busy;
  go.kind = TriggerKind::kEvent;
  go.trigger = SyncLabel::recv("go");
  a.add_edge(std::move(go));
  Edge back;
  back.src = busy;
  back.dst = idle;
  back.kind = TriggerKind::kTimed;
  back.dwell = 5.0;
  a.add_edge(std::move(back));
  return a;
}

TEST(Independence, SharedVariableDetected) {
  Automaton a("a");
  a.add_var("x");
  a.add_location("la");
  a.add_initial_location(0);
  Automaton b("b");
  b.add_var("x");
  b.add_location("lb");
  b.add_initial_location(0);
  const CheckResult r = check_independent(a, b);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message().find("shared data state variable 'x'"), std::string::npos);
}

TEST(Independence, SharedLocationDetected) {
  Automaton a("a");
  a.add_location("same");
  a.add_initial_location(0);
  Automaton b("b");
  b.add_location("same");
  b.add_initial_location(0);
  EXPECT_FALSE(check_independent(a, b).ok);
}

TEST(Independence, SharedEventRootDetected) {
  Automaton a("a");
  {
    a.add_location("la0");
    a.add_location("la1");
    a.add_initial_location(0);
    Edge e;
    e.src = 0;
    e.dst = 1;
    e.kind = TriggerKind::kTimed;
    e.dwell = 1.0;
    e.emits.push_back(SyncLabel::send("evt"));
    a.add_edge(std::move(e));
  }
  Automaton b("b");
  {
    b.add_location("lb0");
    b.add_location("lb1");
    b.add_initial_location(0);
    Edge e;
    e.src = 0;
    e.dst = 1;
    e.kind = TriggerKind::kEvent;
    e.trigger = SyncLabel::recv("evt");
    b.add_edge(std::move(e));
  }
  // Sender vs receiver of the same root: distinct labels (literal Def. 2)
  // but coupled — the default root comparison rejects them.
  EXPECT_FALSE(check_independent(a, b).ok);
  EXPECT_TRUE(check_independent(a, b, /*compare_roots=*/false).ok);
}

TEST(Independence, MutualChecksAllPairs) {
  Automaton a("a"), b("b"), c("c");
  a.add_var("x");
  b.add_var("y");
  c.add_var("x");  // collides with a
  for (Automaton* m : {&a, &b, &c}) {
    m->add_location(m->name() + "_l");
    m->add_initial_location(0);
  }
  EXPECT_TRUE(check_independent(a, b).ok);
  EXPECT_FALSE(check_mutually_independent({&a, &b, &c}).ok);
}

TEST(Simple, UniformInvariantRequired) {
  Automaton a("s");
  a.add_var("x");
  const LocId l0 = a.add_location("l0");
  a.add_location("l1");
  a.set_invariant(l0, Guard{atmost(0, 1.0)});
  a.add_initial_location(l0);
  a.set_initial_data(InitialData::kAnyInInvariant);
  EXPECT_FALSE(check_simple(a).ok);
}

TEST(Simple, ZeroStateMustSatisfyInvariant) {
  Automaton a("s");
  a.add_var("x");
  const LocId l0 = a.add_location("l0");
  a.set_invariant(l0, Guard{atleast(0, 1.0)});  // 0 violates x >= 1
  a.add_initial_location(l0);
  a.set_initial_data(InitialData::kAnyInInvariant);
  const CheckResult r = check_simple(a);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.message().find("zero data state"), std::string::npos);
}

TEST(Simple, InitialDataPolicyRequired) {
  Automaton a("s");
  a.add_location("l0");
  a.add_initial_location(0);
  a.set_initial_data(InitialData::kZero);
  EXPECT_FALSE(check_simple(a).ok);
  a.set_initial_data(InitialData::kAnyInInvariant);
  EXPECT_TRUE(check_simple(a).ok);
}

TEST(Elaborate, StructureOfAtomicElaboration) {
  const Automaton parent = make_parent();
  const Automaton child = make_ramp_child("child", "c");
  const Elaboration e = elaborate(parent, "Idle", child);

  // Locations: {Busy} ∪ {child_run}; variables: p then c.
  EXPECT_EQ(e.automaton.num_locations(), 2u);
  EXPECT_TRUE(e.automaton.has_location("Busy"));
  EXPECT_TRUE(e.automaton.has_location("child_run"));
  EXPECT_EQ(e.automaton.num_vars(), 2u);
  EXPECT_EQ(e.automaton.var_name(0), "p");
  EXPECT_EQ(e.automaton.var_name(1), "c");
  // Initial location: the child's initial (Idle was initial).
  ASSERT_EQ(e.automaton.initial_locations().size(), 1u);
  EXPECT_EQ(e.automaton.location(e.automaton.initial_locations()[0]).name, "child_run");
  // Child location inherits Idle's safe classification.
  EXPECT_FALSE(e.automaton.location(e.automaton.location_id("child_run")).risky);
  // Info captured.
  EXPECT_EQ(e.info.elaborated_location, "Idle");
  EXPECT_EQ(e.info.var_offset, 1u);
  EXPECT_EQ(e.info.child_var_count, 1u);
}

TEST(Elaborate, FreezeOutsideAndParentFlowInside) {
  // Behavioral check of intuitions 4 and 5 of §IV-C.
  const Automaton parent = make_parent();
  const Automaton child = make_ramp_child("child", "c");
  Elaboration e = elaborate(parent, "Idle", child);

  Engine engine({std::move(e.automaton)});
  engine.init();
  const VarId p = engine.automaton(0).var_id("p");
  const VarId c = engine.automaton(0).var_id("c");

  engine.run_until(3.0);  // inside the child: c ramps at 1, p frozen (Idle had no flow)
  EXPECT_NEAR(engine.var(0, c), 3.0, 1e-9);
  EXPECT_NEAR(engine.var(0, p), 0.0, 1e-9);

  engine.inject(0, "go");  // into Busy for 5 s: p ramps at 2, c frozen
  engine.run_until(8.0);
  EXPECT_NEAR(engine.var(0, c), 3.0, 1e-9);   // frozen outside the child
  EXPECT_NEAR(engine.var(0, p), 10.0, 1e-9);  // 5 s at rate 2

  engine.run_until(10.0);  // back in the child (timed return at t=8)
  EXPECT_NEAR(engine.var(0, c), 5.0, 1e-9);   // resumed from 3
}

TEST(Elaborate, TimedEgressGetsAccumulatingClock) {
  // Elaborating a location with timed egress introduces a dwell clock
  // that accumulates across child locations and resets on ingress.
  Automaton parent("p2");
  const LocId work = parent.add_location("Work");
  const LocId rest = parent.add_location("Rest");
  parent.add_initial_location(work);
  Edge tick;
  tick.src = work;
  tick.dst = rest;
  tick.kind = TriggerKind::kTimed;
  tick.dwell = 4.0;
  parent.add_edge(std::move(tick));
  Edge back;
  back.src = rest;
  back.dst = work;
  back.kind = TriggerKind::kTimed;
  back.dwell = 1.0;
  parent.add_edge(std::move(back));

  const Automaton child = casestudy::make_standalone_ventilator();
  Elaboration e = elaborate(parent, "Work", child);
  ASSERT_TRUE(e.info.dwell_clock.has_value());

  Engine engine({std::move(e.automaton)});
  engine.init();
  // The pump saws inside "Work" (several internal transitions), but the
  // egress to Rest still happens exactly at t = 4.
  engine.run_until(3.99);
  EXPECT_TRUE(engine.current_location_name(0) == "PumpIn" ||
              engine.current_location_name(0) == "PumpOut");
  engine.run_until(4.01);
  EXPECT_EQ(engine.current_location_name(0), "Rest");
  // Returns at t = 5, leaves again at t = 9 (clock was reset on ingress).
  engine.run_until(9.01);
  EXPECT_EQ(engine.current_location_name(0), "Rest");
}

TEST(Elaborate, PreconditionsEnforced) {
  const Automaton parent = make_parent();
  Automaton not_simple("ns");
  not_simple.add_var("q");
  not_simple.add_location("ns_l");
  not_simple.add_initial_location(0);  // InitialData::kZero -> not simple
  EXPECT_THROW(elaborate(parent, "Idle", not_simple), std::invalid_argument);

  Automaton collides = make_ramp_child("clash", "p");  // shares var "p"
  EXPECT_THROW(elaborate(parent, "Idle", collides), std::invalid_argument);

  const Automaton child = make_ramp_child("child", "c");
  EXPECT_THROW(elaborate(parent, "NoSuchLocation", child), std::invalid_argument);
}

TEST(Elaborate, ParallelElaborationAtTwoLocations) {
  const Automaton parent = make_parent();
  const Automaton c1 = make_ramp_child("one", "u");
  const Automaton c2 = make_ramp_child("two", "w");
  const ParallelElaboration pe = elaborate_parallel(parent, {"Idle", "Busy"}, {&c1, &c2});
  EXPECT_EQ(pe.automaton.num_locations(), 2u);  // one_run, two_run
  EXPECT_TRUE(pe.automaton.has_location("one_run"));
  EXPECT_TRUE(pe.automaton.has_location("two_run"));
  EXPECT_EQ(pe.steps.size(), 2u);
  // Busy was risky: its child inherits.
  EXPECT_TRUE(pe.automaton.location(pe.automaton.location_id("two_run")).risky);
  // Projection composes across steps.
  EXPECT_EQ(project_location(pe.steps, "one_run"), "Idle");
  EXPECT_EQ(project_location(pe.steps, "two_run"), "Busy");

  EXPECT_THROW(elaborate_parallel(parent, {"Idle", "Idle"}, {&c1, &c2}),
               std::invalid_argument);
}

// Theorem 2, behaviorally, at an arbitrary location: elaborating the
// Participant at any of its locations (parameterized) preserves the PTE
// guarantee under loss — children inherit the location's risky
// classification, so the monitor's judgement is unchanged.
class ElaborateAnywhere : public ::testing::TestWithParam<const char*> {};

TEST_P(ElaborateAnywhere, PatternSafetySurvivesElaboration) {
  const std::string at = GetParam();
  const auto cfg = ptecps::core::PatternConfig::laser_tracheotomy();
  ptecps::core::BuiltSystem built = ptecps::core::build_pattern_system(cfg);
  // A simple child: an actuator servo dithering between two setpoints.
  Automaton servo("servo");
  const VarId pos = servo.add_var("servo_pos", 0.0);
  const LocId up = servo.add_location("ServoUp");
  const LocId down = servo.add_location("ServoDown");
  const Guard range{std::vector<LinearConstraint>{atleast(pos, 0.0), atmost(pos, 1.0)}};
  servo.set_invariant(up, range);
  servo.set_invariant(down, range);
  servo.set_flow(up, Flow{}.rate(pos, 0.5));
  servo.set_flow(down, Flow{}.rate(pos, -0.5));
  Edge top;
  top.src = up;
  top.dst = down;
  top.kind = TriggerKind::kCondition;
  top.guard = Guard{atleast(pos, 1.0)};
  servo.add_edge(std::move(top));
  Edge bottom;
  bottom.src = down;
  bottom.dst = up;
  bottom.kind = TriggerKind::kCondition;
  bottom.guard = Guard{atmost(pos, 0.0)};
  servo.add_edge(std::move(bottom));
  servo.add_initial_location(up);
  servo.set_initial_data(InitialData::kAnyInInvariant);

  const bool was_risky =
      built.automata[1].location(built.automata[1].location_id(at)).risky;
  Elaboration design = elaborate(built.automata[1], at, servo);
  // Children inherit the elaborated location's classification.
  EXPECT_EQ(design.automaton.location(design.automaton.location_id("ServoUp")).risky,
            was_risky);
  built.automata[1] = std::move(design.automaton);

  Engine engine(std::move(built.automata));
  sim::Rng rng(19);
  ptecps::net::StarNetwork network(engine.scheduler(), rng, 2);
  network.configure_all(
      [] { return std::make_unique<ptecps::net::BernoulliLoss>(0.3); },
      ptecps::net::ChannelConfig{0.001, 0.002, 0.0, 0.5});
  ptecps::net::NetEventRouter router(network, built.automaton_of_entity);
  for (const auto& r : built.wireless_routes)
    router.add_route(r.root, r.src, r.dst, ptecps::net::Transport::kWireless);
  engine.set_router(&router);
  router.attach(engine);
  ptecps::core::PteMonitor monitor(ptecps::core::MonitorParams::from_config(cfg));
  monitor.attach(engine, {0, 1, 2});
  engine.init();

  sim::Rng stim(23);
  double t = 0.0;
  while (t < 600.0) {
    t += stim.exponential(25.0);
    engine.scheduler().schedule_at(t, [&engine] {
      engine.inject(2, ptecps::core::events::cmd_request(2));
    });
  }
  engine.run_until(800.0);
  monitor.finalize(800.0);
  EXPECT_TRUE(monitor.violations().empty()) << "elaborated at '" << at << "'\n"
                                            << monitor.summary();
}

INSTANTIATE_TEST_SUITE_P(Locations, ElaborateAnywhere,
                         ::testing::Values("Fall-Back", "Entering", "Risky Core",
                                           "Exiting 1", "Exiting 2"));

TEST(Elaborate, VerifyElaborationAcceptsAndRejects) {
  const Automaton parent = make_parent();
  const Automaton child = make_ramp_child("child", "c");
  Elaboration e = elaborate(parent, "Idle", child);
  EXPECT_TRUE(verify_elaboration(e.automaton, parent, "Idle", child).ok);

  // Tamper: change the timed dwell.
  Automaton tampered = e.automaton;
  // Rebuild with a different parent to get a mismatch.
  Automaton parent2 = make_parent();
  // (modify by re-elaborating at the other location)
  const Elaboration other = elaborate(parent2, "Busy", child);
  EXPECT_FALSE(verify_elaboration(other.automaton, parent, "Idle", child).ok);
}

}  // namespace
}  // namespace ptecps::hybrid
