// Tests for the session/reset-time analysis — Theorem 1's second claim:
// after every accepted lease request the whole system returns to
// Fall-Back within T^max_wait + T^max_LS1 (+ the Δ refinement), no
// matter what the network loses.
#include <gtest/gtest.h>

#include <memory>

#include "campaign/context.hpp"
#include "casestudy/trial.hpp"
#include "core/analysis.hpp"
#include "core/config.hpp"
#include "core/deployment.hpp"
#include "core/events.hpp"
#include "core/monitor.hpp"
#include "net/bridge.hpp"
#include "net/star_network.hpp"

namespace ptecps::core {
namespace {

struct TrackedHarness {
  PatternConfig config = PatternConfig::laser_tracheotomy();
  sim::Rng rng{31};
  std::unique_ptr<hybrid::Engine> engine;
  std::unique_ptr<net::StarNetwork> network;
  std::unique_ptr<net::NetEventRouter> router;
  std::unique_ptr<SessionTracker> tracker;

  explicit TrackedHarness(double loss = 0.0) {
    BuiltSystem built = build_pattern_system(config);
    engine = std::make_unique<hybrid::Engine>(std::move(built.automata));
    network = std::make_unique<net::StarNetwork>(engine->scheduler(), rng, 2);
    network->configure_all(
        [loss]() -> std::unique_ptr<net::LossModel> {
          if (loss <= 0.0) return std::make_unique<net::PerfectLink>();
          return std::make_unique<net::BernoulliLoss>(loss);
        },
        net::ChannelConfig{0.0, 0.0, 0.0, 0.5});
    router = std::make_unique<net::NetEventRouter>(*network, built.automaton_of_entity);
    built.install_routes(*router);
    engine->set_router(router.get());
    router->attach(*engine);
    tracker = std::make_unique<SessionTracker>(
        *engine, SessionTracker::fall_back_sets(*engine, {}));
    engine->init();
  }
};

TEST(SessionTracker, CleanSessionMeasured) {
  TrackedHarness h;
  h.engine->run_until(15.0);
  h.engine->inject(2, events::cmd_request(2));
  h.engine->run_until(120.0);
  h.tracker->finalize(120.0);
  ASSERT_EQ(h.tracker->session_count(), 1u);
  const SessionRecord& s = h.tracker->sessions()[0];
  EXPECT_TRUE(s.closed());
  EXPECT_NEAR(s.supervisor_left, 15.0, 0.1);
  // Reset claim: within T^max_wait + T^max_LS1 (+Δ) = 47.1 s.
  EXPECT_LE(s.system_reset_duration(),
            h.config.risky_dwell_bound() + h.config.delivery_slack + 1e-6);
  // The laser lease runs its full 20 s (nobody cancels) and the exit
  // chain follows: the session is a real excursion, not a bounce.
  EXPECT_GT(s.system_reset_duration(), 30.0);
}

TEST(SessionTracker, ResetBoundHoldsUnderHeavyLoss) {
  // Property: across lossy runs with many sessions, every closed session
  // resets within the bound.
  for (double loss : {0.2, 0.5, 0.8}) {
    TrackedHarness h(loss);
    sim::Rng stim(17);
    double t = 0.0;
    while (t < 1200.0) {
      t += stim.exponential(25.0);
      h.engine->scheduler().schedule_at(t, [&h] {
        h.engine->inject(2, events::cmd_request(2));
      });
    }
    // Quiesce long past the last stimulus so every session closes.
    h.engine->run_until(1200.0 + 2.0 * h.config.risky_dwell_bound());
    h.tracker->finalize(h.engine->now());
    const double bound = h.config.risky_dwell_bound() + h.config.delivery_slack;
    EXPECT_TRUE(h.tracker->all_within(bound))
        << "loss=" << loss << ": " << h.tracker->summary();
    if (loss <= 0.2) {
      EXPECT_GE(h.tracker->session_count(), 5u);
    }
  }
}

TEST(SessionTracker, OpenSessionAtHorizonIsRightCensored) {
  // Cut the run mid-session: the open session must enter the worst-case
  // statistics as a lower bound instead of being dropped (it is exactly
  // the longest excursion in this run).
  TrackedHarness h;
  h.engine->run_until(15.0);
  h.engine->inject(2, events::cmd_request(2));
  h.engine->run_until(30.0);  // lease session still in full swing
  h.tracker->finalize(30.0);
  ASSERT_EQ(h.tracker->session_count(), 1u);
  const SessionRecord& s = h.tracker->sessions()[0];
  EXPECT_FALSE(s.closed());
  EXPECT_TRUE(s.censored());
  EXPECT_NEAR(s.censored_elapsed(), 30.0 - s.supervisor_left, 1e-9);
  EXPECT_EQ(h.tracker->censored_count(), 1u);
  // max_system_reset reports the censored elapsed time, not 0.
  EXPECT_NEAR(h.tracker->max_system_reset(), s.censored_elapsed(), 1e-9);
  // Within the Theorem 1 bound the censored session is indeterminate —
  // the check must not fail on it...
  EXPECT_TRUE(h.tracker->all_within(h.config.risky_dwell_bound() + h.config.delivery_slack));
  // ...but a censored session that already exceeds a (lowered) bound is a
  // proven violation even though it never closed.
  EXPECT_FALSE(h.tracker->all_within(10.0));
  EXPECT_NE(h.tracker->summary().find("1 censored"), std::string::npos);
}

TEST(SessionTracker, ClosedSessionWithEntityStillOutIsCensoredToo) {
  // The other censoring variant: the (ablated, impatient) supervisor
  // unwinds home while the laser's lost Abort leaves it leased past the
  // horizon.  The session is closed() but its whole-system reset is
  // still in progress — it must be censored, not reported as a short
  // supervisor-only excursion.
  campaign::ScenarioSpec spec;
  spec.config = PatternConfig::laser_tracheotomy();
  spec.deadline_wait = false;  // the unsound ablation
  spec.horizon = 40.0;
  spec.drive = [](campaign::SimulationContext& ctx) {
    ctx.run_until(15.0);
    ctx.inject(2, events::cmd_request(2));
    ctx.run_until(27.0);   // laser emitting
    ctx.kill_downlink(2);  // Abort(2) will be lost
    ctx.kill_uplink(2);    // and no Exit(2) confirmation either
    ctx.set_entity_var(0, "approval_val", 0.0);
    ctx.run_until(40.0);
  };
  campaign::SimulationContext ctx(spec, 7);
  const campaign::RunResult r = ctx.execute();
  const SessionTracker* tracker = ctx.session_tracker();
  ASSERT_NE(tracker, nullptr);
  ASSERT_EQ(tracker->session_count(), 1u);
  const SessionRecord& s = tracker->sessions()[0];
  EXPECT_TRUE(s.closed());       // the impatient supervisor went home...
  EXPECT_TRUE(s.censored());     // ...but the laser is still out at 40 s
  EXPECT_LT(s.entities_settled, 0.0);
  EXPECT_EQ(tracker->censored_count(), 1u);
  EXPECT_EQ(r.session.censored_sessions, 1u);
  // The worst-case statistic reports the in-progress reset as a lower
  // bound, not the supervisor's short excursion.
  EXPECT_NEAR(tracker->max_system_reset(), 40.0 - s.supervisor_left, 1e-6);
  EXPECT_FALSE(tracker->all_within(10.0));
}

TEST(SessionTracker, OpenSessionBeforeFinalizeStillFailsTheCheck) {
  // Without a recorded horizon an open session cannot be judged; the
  // bound check stays conservative (pre-censoring behavior).
  TrackedHarness h;
  h.engine->run_until(15.0);
  h.engine->inject(2, events::cmd_request(2));
  h.engine->run_until(30.0);
  EXPECT_FALSE(h.tracker->all_within(1000.0));
}

TEST(SessionTracker, FallBackSetsIncludeElaboratedChildren) {
  // With the elaborated ventilator, PumpIn/PumpOut are projected
  // Fall-Back locations.
  casestudy::TrialOptions opt;
  opt.seed = 2;
  opt.duration = 1.0;
  casestudy::LaserTracheotomySystem sys(std::move(opt));
  const auto sets =
      SessionTracker::fall_back_sets(sys.engine(), {"PumpIn", "PumpOut"});
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0].size(), 1u);  // supervisor Fall-Back
  EXPECT_EQ(sets[1].size(), 2u);  // the two pump locations
  EXPECT_EQ(sets[2].size(), 1u);  // scalpel Fall-Back
}

TEST(SessionTracker, CaseStudyResetBoundUnderInterference) {
  casestudy::TrialOptions opt;
  opt.seed = 21;
  opt.duration = 900.0;
  casestudy::LaserTracheotomySystem sys(std::move(opt));
  SessionTracker tracker(
      sys.engine(), SessionTracker::fall_back_sets(sys.engine(), {"PumpIn", "PumpOut"}));
  // note: attached after init — the initial Fall-Back entries were missed,
  // but all automata START in Fall-Back, so the tracker's initial state
  // (everyone home) is correct.
  sys.run(900.0 + 2.0 * sys.options().config.risky_dwell_bound());
  tracker.finalize(sys.engine().now());
  const auto& cfg = sys.options().config;
  EXPECT_GE(tracker.session_count(), 3u);
  EXPECT_TRUE(tracker.all_within(cfg.risky_dwell_bound() + cfg.delivery_slack))
      << tracker.summary();
}

}  // namespace
}  // namespace ptecps::core
