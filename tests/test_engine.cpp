// Execution-engine semantics: timed edges, event edges, condition-edge
// crossings (exact and ODE-bisected), cascades, resets, invariants,
// samplers and deterministic tie-breaking.
#include <gtest/gtest.h>

#include <cmath>

#include "hybrid/automaton.hpp"
#include "hybrid/engine.hpp"
#include "hybrid/trace.hpp"

namespace ptecps::hybrid {
namespace {

// -- helpers ---------------------------------------------------------------

Automaton two_state_timer(double dwell) {
  Automaton a("timer");
  const LocId s0 = a.add_location("s0");
  const LocId s1 = a.add_location("s1");
  Edge e;
  e.src = s0;
  e.dst = s1;
  e.kind = TriggerKind::kTimed;
  e.dwell = dwell;
  a.add_edge(std::move(e));
  a.add_initial_location(s0);
  return a;
}

TEST(Engine, TimedEdgeFiresExactlyAtDwell) {
  Engine engine({two_state_timer(2.5)});
  engine.init();
  engine.run_until(2.4999);
  EXPECT_EQ(engine.current_location_name(0), "s0");
  engine.run_until(2.5001);
  EXPECT_EQ(engine.current_location_name(0), "s1");
  EXPECT_DOUBLE_EQ(engine.location_entry_time(0), 2.5);
}

TEST(Engine, TimedEdgeCancelledWhenLocationLeftEarly) {
  Automaton a("t");
  const LocId s0 = a.add_location("s0");
  const LocId s1 = a.add_location("s1");
  const LocId s2 = a.add_location("s2");
  Edge slow;
  slow.src = s0;
  slow.dst = s2;
  slow.kind = TriggerKind::kTimed;
  slow.dwell = 10.0;
  a.add_edge(std::move(slow));
  Edge ev;
  ev.src = s0;
  ev.dst = s1;
  ev.kind = TriggerKind::kEvent;
  ev.trigger = SyncLabel::recv("go");
  a.add_edge(std::move(ev));
  a.add_initial_location(s0);

  Engine engine({std::move(a)});
  engine.init();
  engine.run_until(1.0);
  EXPECT_TRUE(engine.inject(0, "go"));
  engine.run_until(20.0);
  EXPECT_EQ(engine.current_location_name(0), "s1");  // stale timeout ignored
}

TEST(Engine, EventIgnoredWhenNoEnabledEdge) {
  Engine engine({two_state_timer(1.0)});
  engine.init();
  EXPECT_FALSE(engine.inject(0, "nonexistent"));
  const auto ignored = engine.trace().filter(TraceKind::kIgnoredEvent);
  ASSERT_EQ(ignored.size(), 1u);
  EXPECT_EQ(ignored[0].detail, "nonexistent");
}

TEST(Engine, ConstantRateCrossingIsExact) {
  // x starts at 0, rate 2; condition edge at x >= 5 must fire at t = 2.5.
  Automaton a("ramp");
  const VarId x = a.add_var("x", 0.0);
  const LocId s0 = a.add_location("s0");
  const LocId s1 = a.add_location("s1");
  a.set_flow(s0, Flow{}.rate(x, 2.0));
  Edge e;
  e.src = s0;
  e.dst = s1;
  e.kind = TriggerKind::kCondition;
  e.guard = Guard{atleast(x, 5.0)};
  a.add_edge(std::move(e));
  a.add_initial_location(s0);

  Engine engine({std::move(a)});
  engine.init();
  engine.run_until(10.0);
  EXPECT_EQ(engine.current_location_name(0), "s1");
  EXPECT_NEAR(engine.location_entry_time(0), 2.5, 1e-9);
  EXPECT_NEAR(engine.var(0, static_cast<VarId>(0)), 5.0, 1e-9);
}

TEST(Engine, VentilatorSawtoothHasPeriodSix) {
  // Fig. 2 dynamics: 0.3 m at 0.1 m/s each way -> 6 s period.
  Automaton a("vent");
  const VarId h = a.add_var("H", 0.0);
  const LocId out = a.add_location("PumpOut");
  const LocId in = a.add_location("PumpIn");
  a.set_flow(out, Flow{}.rate(h, -0.1));
  a.set_flow(in, Flow{}.rate(h, 0.1));
  Edge down;
  down.src = out;
  down.dst = in;
  down.kind = TriggerKind::kCondition;
  down.guard = Guard{atmost(h, 0.0)};
  a.add_edge(std::move(down));
  Edge up;
  up.src = in;
  up.dst = out;
  up.kind = TriggerKind::kCondition;
  up.guard = Guard{atleast(h, 0.3)};
  a.add_edge(std::move(up));
  a.add_initial_location(out);

  Engine engine({std::move(a)});
  engine.init();  // H = 0 in PumpOut: fires immediately into PumpIn
  EXPECT_EQ(engine.current_location_name(0), "PumpIn");
  engine.run_until(20.0);
  // At t = 20: cycles of 6 s; 20 mod 6 = 2 -> PumpOut descending from 0.3
  // reached at t = 18... trajectory: [0,3] rise, [3,6] fall, ...
  // 20 mod 6 = 2 -> rising phase? t=18 H=0, rises until t=21. So PumpIn.
  EXPECT_EQ(engine.current_location_name(0), "PumpIn");
  EXPECT_NEAR(engine.var(0, h), 0.2, 1e-9);
  // Count transitions: initial + one every 3 s after t=0 (at 3,6,9,12,15,18).
  const auto transitions = engine.trace().filter(TraceKind::kTransition, 0);
  EXPECT_EQ(transitions.size(), 1u /*init*/ + 1u /*t=0 fire*/ + 6u);
}

TEST(Engine, OdeCrossingBisection) {
  // dx/dt = -x (exponential decay from 8); edge at x <= 4 fires at ln(2).
  Automaton a("decay");
  const VarId x = a.add_var("x", 8.0);
  const LocId s0 = a.add_location("s0");
  const LocId s1 = a.add_location("s1");
  a.set_flow(s0, Flow{}.ode([](const Valuation& v, Valuation& d) { d[0] = -v[0]; },
                            "dx/dt=-x"));
  Edge e;
  e.src = s0;
  e.dst = s1;
  e.kind = TriggerKind::kCondition;
  e.guard = Guard{atmost(x, 4.0)};
  a.add_edge(std::move(e));
  a.add_initial_location(s0);

  Engine engine({std::move(a)});
  engine.init();
  engine.run_until(5.0);
  EXPECT_EQ(engine.current_location_name(0), "s1");
  EXPECT_NEAR(engine.location_entry_time(0), std::log(2.0), 1e-4);
  EXPECT_NEAR(engine.var(0, x), 4.0, 1e-3);
}

TEST(Engine, EmissionDeliveredToReceiverSameInstant) {
  Automaton sender("sender");
  {
    const LocId s0 = sender.add_location("s0");
    const LocId s1 = sender.add_location("s1");
    Edge e;
    e.src = s0;
    e.dst = s1;
    e.kind = TriggerKind::kTimed;
    e.dwell = 1.0;
    e.emits.push_back(SyncLabel::send("ping"));
    sender.add_edge(std::move(e));
    sender.add_initial_location(s0);
  }
  Automaton receiver("receiver");
  {
    const LocId r0 = receiver.add_location("r0");
    const LocId r1 = receiver.add_location("r1");
    Edge e;
    e.src = r0;
    e.dst = r1;
    e.kind = TriggerKind::kEvent;
    e.trigger = SyncLabel::recv("ping");
    receiver.add_edge(std::move(e));
    receiver.add_initial_location(r0);
  }
  Engine engine({std::move(sender), std::move(receiver)});
  engine.init();
  engine.run_until(2.0);
  EXPECT_EQ(engine.current_location_name(1), "r1");
  EXPECT_DOUBLE_EQ(engine.location_entry_time(1), 1.0);
}

TEST(Engine, ResetAppliesOnTransition) {
  Automaton a("resetter");
  const VarId x = a.add_var("x", 1.0);
  const VarId d = a.add_var("deadline", 0.0);
  const LocId s0 = a.add_location("s0");
  const LocId s1 = a.add_location("s1");
  Edge e;
  e.src = s0;
  e.dst = s1;
  e.kind = TriggerKind::kTimed;
  e.dwell = 2.0;
  e.reset.set(x, 42.0);
  e.reset.set_now_plus(d, 10.0);
  a.add_edge(std::move(e));
  a.add_initial_location(s0);

  Engine engine({std::move(a)});
  engine.init();
  engine.run_until(3.0);
  EXPECT_DOUBLE_EQ(engine.var(0, x), 42.0);
  EXPECT_DOUBLE_EQ(engine.var(0, d), 12.0);  // now(=2) + 10
}

TEST(Engine, ClockDeadlineConditionFires) {
  // The supervisor's D_i mechanism: clock rate 1, deadline set by reset,
  // condition edge clock - D >= 0.
  Automaton a("deadline");
  const VarId clock = a.add_var("clock", 0.0);
  const VarId dl = a.add_var("D", 0.0);
  const LocId s0 = a.add_location("s0");
  const LocId s1 = a.add_location("s1");
  const LocId s2 = a.add_location("s2");
  a.set_flow(s0, Flow{}.rate(clock, 1.0));
  a.set_flow(s1, Flow{}.rate(clock, 1.0));
  a.set_flow(s2, Flow{}.rate(clock, 1.0));
  Edge start;
  start.src = s0;
  start.dst = s1;
  start.kind = TriggerKind::kTimed;
  start.dwell = 1.0;
  start.reset.set_now_plus(dl, 5.0);  // D := 6
  a.add_edge(std::move(start));
  Edge fire;
  fire.src = s1;
  fire.dst = s2;
  fire.kind = TriggerKind::kCondition;
  LinearExpr expr = LinearExpr::var(clock);
  expr.add_term(dl, -1.0);
  fire.guard = Guard{LinearConstraint{expr, Cmp::kGe}};
  a.add_edge(std::move(fire));
  a.add_initial_location(s0);

  Engine engine({std::move(a)});
  engine.init();
  engine.run_until(10.0);
  EXPECT_EQ(engine.current_location_name(0), "s2");
  EXPECT_NEAR(engine.location_entry_time(0), 6.0, 1e-9);
}

TEST(Engine, MinDwellGuardOnEventEdge) {
  Automaton a("dwellguard");
  const LocId s0 = a.add_location("s0");
  const LocId s1 = a.add_location("s1");
  Edge e;
  e.src = s0;
  e.dst = s1;
  e.kind = TriggerKind::kEvent;
  e.trigger = SyncLabel::recv("go");
  e.guard = Guard{}.min_dwell(5.0);
  a.add_edge(std::move(e));
  a.add_initial_location(s0);

  Engine engine({std::move(a)});
  engine.init();
  engine.run_until(2.0);
  EXPECT_FALSE(engine.inject(0, "go"));  // too early
  engine.run_until(6.0);
  EXPECT_TRUE(engine.inject(0, "go"));
  EXPECT_EQ(engine.current_location_name(0), "s1");
}

TEST(Engine, SetVarTriggersConditionEdge) {
  Automaton a("sensor");
  const VarId v = a.add_var("reading", 1.0);
  const LocId ok = a.add_location("ok");
  const LocId alarm = a.add_location("alarm");
  Edge e;
  e.src = ok;
  e.dst = alarm;
  e.kind = TriggerKind::kCondition;
  e.guard = Guard{atmost(v, 0.5)};
  a.add_edge(std::move(e));
  a.add_initial_location(ok);

  Engine engine({std::move(a)});
  engine.init();
  engine.run_until(1.0);
  EXPECT_EQ(engine.current_location_name(0), "ok");
  engine.set_var(0, v, 0.3);
  EXPECT_EQ(engine.current_location_name(0), "alarm");
}

TEST(Engine, InvariantViolationRecorded) {
  Automaton a("inv");
  const VarId x = a.add_var("x", 0.0);
  const LocId s0 = a.add_location("s0");
  a.set_invariant(s0, Guard{atmost(x, 1.0)});
  a.set_flow(s0, Flow{}.rate(x, 1.0));
  // No egress: x will exceed the invariant.
  a.add_initial_location(s0);

  Engine engine({std::move(a)});
  engine.init();
  engine.run_until(3.0);
  EXPECT_FALSE(engine.invariant_violations().empty());
}

TEST(Engine, SamplerRecordsSeries) {
  Automaton a("sampled");
  const VarId x = a.add_var("x", 0.0);
  const LocId s0 = a.add_location("s0");
  a.set_flow(s0, Flow{}.rate(x, 1.0));
  a.add_initial_location(s0);

  Engine engine({std::move(a)});
  engine.init();
  engine.add_sampler(0, x, 0.5);
  engine.run_until(2.0);
  const auto series = sample_series(engine.trace(), 0, "x");
  ASSERT_GE(series.size(), 4u);
  EXPECT_NEAR(series[1].value, 0.5, 1e-9);
  EXPECT_NEAR(series[2].value, 1.0, 1e-9);
}

TEST(Engine, SelfLoopTimedEdgeRetriggers) {
  // The no-lease supervisor's retransmission pattern.
  Automaton a("loop");
  const LocId s0 = a.add_location("s0");
  Edge e;
  e.src = s0;
  e.dst = s0;
  e.kind = TriggerKind::kTimed;
  e.dwell = 1.0;
  e.emits.push_back(SyncLabel::send("tick"));
  a.add_edge(std::move(e));
  a.add_initial_location(s0);

  Engine engine({std::move(a)});
  engine.init();
  engine.run_until(5.5);
  EXPECT_EQ(engine.trace().filter(TraceKind::kEmit, 0).size(), 5u);
}

TEST(Engine, TwoOdeAutomataCrossIndependently) {
  // Two decaying automata with different thresholds: crossings must fire
  // in the right global order even though both need bisection.
  auto make_decay = [](const std::string& name, double init, double threshold) {
    Automaton a(name);
    const VarId x = a.add_var(name + "_x", init);
    const LocId s0 = a.add_location(name + "_hi");
    const LocId s1 = a.add_location(name + "_lo");
    a.set_flow(s0, Flow{}.ode([](const Valuation& v, Valuation& d) { d[0] = -v[0]; },
                              "decay"));
    Edge e;
    e.src = s0;
    e.dst = s1;
    e.kind = TriggerKind::kCondition;
    e.guard = Guard{atmost(x, threshold)};
    a.add_edge(std::move(e));
    a.add_initial_location(s0);
    return a;
  };
  // a: 8 -> 4 at ln2 ≈ 0.693; b: 8 -> 2 at ln4 ≈ 1.386.
  Engine engine({make_decay("a", 8.0, 4.0), make_decay("b", 8.0, 2.0)});
  engine.init();
  engine.run_until(0.9);
  EXPECT_EQ(engine.current_location_name(0), "a_lo");
  EXPECT_EQ(engine.current_location_name(1), "b_hi");
  engine.run_until(2.0);
  EXPECT_EQ(engine.current_location_name(1), "b_lo");
  EXPECT_NEAR(engine.location_entry_time(1), std::log(4.0), 1e-3);
}

TEST(Engine, SimultaneousTimedEdgesDeterministicOrder) {
  // Two automata with identical deadlines: the one scheduled first
  // (lower index, inserted first at init) fires first; its emission can
  // preempt the second automaton's transition at the same instant.
  Automaton first("first");
  {
    first.add_location("f0");
    first.add_location("f1");
    first.add_initial_location(0);
    Edge e;
    e.src = 0;
    e.dst = 1;
    e.kind = TriggerKind::kTimed;
    e.dwell = 1.0;
    e.emits.push_back(SyncLabel::send("squelch"));
    first.add_edge(std::move(e));
  }
  Automaton second("second");
  {
    second.add_location("s0");
    second.add_location("s1");
    second.add_location("s2");
    second.add_initial_location(0);
    Edge t;
    t.src = 0;
    t.dst = 1;
    t.kind = TriggerKind::kTimed;
    t.dwell = 1.0;
    second.add_edge(std::move(t));
    Edge ev;
    ev.src = 0;
    ev.dst = 2;
    ev.kind = TriggerKind::kEvent;
    ev.trigger = SyncLabel::recv("squelch");
    second.add_edge(std::move(ev));
  }
  Engine engine({std::move(first), std::move(second)});
  engine.init();
  engine.run_until(2.0);
  EXPECT_EQ(engine.current_location_name(0), "f1");
  // FIFO tie-break: first's timeout ran first, its broadcast moved second
  // to s2 before second's own (now stale) timeout could fire.
  EXPECT_EQ(engine.current_location_name(1), "s2");
}

TEST(Engine, ThrowOnInvariantViolationOption) {
  Automaton a("strict");
  const VarId x = a.add_var("x", 0.0);
  const LocId s0 = a.add_location("s0");
  a.set_invariant(s0, Guard{atmost(x, 1.0)});
  a.set_flow(s0, Flow{}.rate(x, 1.0));
  a.add_initial_location(s0);
  EngineOptions options;
  options.throw_on_invariant_violation = true;
  Engine engine({std::move(a)}, options);
  engine.init();
  EXPECT_THROW(engine.run_until(3.0), std::invalid_argument);
}

TEST(Engine, EventEdgeGuardFiltersDelivery) {
  Automaton a("guarded");
  const VarId x = a.add_var("x", 0.0);
  const LocId s0 = a.add_location("s0");
  const LocId s1 = a.add_location("s1");
  Edge e;
  e.src = s0;
  e.dst = s1;
  e.kind = TriggerKind::kEvent;
  e.trigger = SyncLabel::recv("go");
  e.guard = Guard{atleast(x, 1.0)};
  a.add_edge(std::move(e));
  a.add_initial_location(s0);
  Engine engine({std::move(a)});
  engine.init();
  EXPECT_FALSE(engine.inject(0, "go"));  // guard false: ignored
  engine.set_var(0, x, 2.0);
  EXPECT_TRUE(engine.inject(0, "go"));
  EXPECT_EQ(engine.current_location_name(0), "s1");
}

TEST(Engine, IdenticalRunsProduceIdenticalTraces) {
  auto run_once = [] {
    Automaton a("det");
    const VarId x = a.add_var("x", 0.0);
    const LocId s0 = a.add_location("s0");
    const LocId s1 = a.add_location("s1");
    a.set_flow(s0, Flow{}.rate(x, 1.0));
    Edge up;
    up.src = s0;
    up.dst = s1;
    up.kind = TriggerKind::kCondition;
    up.guard = Guard{atleast(x, 2.0)};
    a.add_edge(std::move(up));
    Edge back;
    back.src = s1;
    back.dst = s0;
    back.kind = TriggerKind::kTimed;
    back.dwell = 0.5;
    back.reset.set(x, 0.0);
    a.add_edge(std::move(back));
    a.add_initial_location(s0);
    Engine engine({std::move(a)});
    engine.init();
    engine.run_until(30.0);
    std::vector<std::pair<double, LocId>> transitions;
    for (const auto& r : engine.trace().records()) {
      if (r.kind == TraceKind::kTransition) transitions.emplace_back(r.t, r.to);
    }
    return transitions;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Engine, CascadeLimitThrows) {
  // Two condition edges forming an instantaneous cycle.
  Automaton a("zeno");
  const VarId x = a.add_var("x", 1.0);
  const LocId s0 = a.add_location("s0");
  const LocId s1 = a.add_location("s1");
  Edge e1;
  e1.src = s0;
  e1.dst = s1;
  e1.kind = TriggerKind::kCondition;
  e1.guard = Guard{atleast(x, 0.5)};
  a.add_edge(std::move(e1));
  Edge e2;
  e2.src = s1;
  e2.dst = s0;
  e2.kind = TriggerKind::kCondition;
  e2.guard = Guard{atleast(x, 0.5)};
  a.add_edge(std::move(e2));
  a.add_initial_location(s0);

  Engine engine({std::move(a)});
  EXPECT_THROW(engine.init(), std::logic_error);
}

}  // namespace
}  // namespace ptecps::hybrid
