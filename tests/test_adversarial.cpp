// Property tests attacking Theorem 1 the way its statement demands:
// under ARBITRARY loss.  Exhaustive loss schedules over the first K
// wireless packets of a session (parameterized sweep), plus randomized
// configuration/loss/stimulus fuzzing.
#include <gtest/gtest.h>

#include <memory>

#include "casestudy/trial.hpp"
#include "core/config.hpp"
#include "core/deployment.hpp"
#include "core/events.hpp"
#include "core/monitor.hpp"
#include "core/synthesis.hpp"
#include "net/bridge.hpp"
#include "net/star_network.hpp"

namespace ptecps::core {
namespace {

/// Loss model sharing one global verdict script across all links.
struct SharedSchedule {
  std::uint64_t mask = 0;
  std::size_t bits = 0;
  std::size_t next = 0;
};

class SharedScheduleLoss final : public net::LossModel {
 public:
  explicit SharedScheduleLoss(std::shared_ptr<SharedSchedule> state)
      : state_(std::move(state)) {}
  bool lose(sim::SimTime, sim::Rng&) override {
    const std::size_t i = state_->next++;
    return i < state_->bits && ((state_->mask >> i) & 1ULL);
  }
  std::string describe() const override { return "shared-schedule"; }

 private:
  std::shared_ptr<SharedSchedule> state_;
};

struct RunOutcome {
  std::size_t violations = 0;
  bool recovered = false;
};

RunOutcome run_session(std::uint64_t mask, std::size_t bits, double toff) {
  auto state = std::make_shared<SharedSchedule>();
  state->mask = mask;
  state->bits = bits;
  const PatternConfig cfg = PatternConfig::laser_tracheotomy();
  sim::Rng rng(1);
  BuiltSystem built = build_pattern_system(cfg);
  hybrid::Engine engine(std::move(built.automata));
  net::StarNetwork network(engine.scheduler(), rng, 2);
  network.configure_all([&state] { return std::make_unique<SharedScheduleLoss>(state); },
                        net::ChannelConfig{0.0, 0.0, 0.0, 0.5});
  net::NetEventRouter router(network, built.automaton_of_entity);
  built.install_routes(router);
  engine.set_router(&router);
  router.attach(engine);
  PteMonitor monitor(MonitorParams::from_config(cfg));
  monitor.attach(engine, {0, 1, 2});
  engine.init();
  engine.run_until(14.0);
  engine.inject(2, events::cmd_request(2));
  if (toff > 0.0) {
    engine.run_until(25.0 + toff);
    engine.inject(2, events::cmd_cancel(2));
  }
  engine.run_until(220.0);
  monitor.finalize(220.0);

  RunOutcome out;
  out.violations = monitor.violations().size();
  out.recovered = true;
  for (std::size_t a = 0; a <= 2; ++a) {
    if (engine.current_location_name(a) != "Fall-Back") out.recovered = false;
  }
  return out;
}

// Exhaustive sweep, split into 16 parameterized shards of 2^10 / 16
// schedules each so failures localize.
class ExhaustiveLossSchedules : public ::testing::TestWithParam<int> {};

TEST_P(ExhaustiveLossSchedules, NoViolationsAndFullRecovery) {
  constexpr std::size_t kBits = 10;
  const std::uint64_t shard = static_cast<std::uint64_t>(GetParam());
  const std::uint64_t per_shard = (1ULL << kBits) / 16;
  for (std::uint64_t i = 0; i < per_shard; ++i) {
    const std::uint64_t mask = shard * per_shard + i;
    const RunOutcome out = run_session(mask, kBits, /*toff=*/4.0);
    ASSERT_EQ(out.violations, 0u) << "mask=" << mask;
    ASSERT_TRUE(out.recovered) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ExhaustiveLossSchedules, ::testing::Range(0, 16));

// The surgeon's cancel timing interacts with the loss schedule; sweep it.
class CancelTimingSweep : public ::testing::TestWithParam<double> {};

TEST_P(CancelTimingSweep, AlternatingLossPatternsStaySafe) {
  const double toff = GetParam();
  for (std::uint64_t mask : {0x155ULL, 0x2AAULL, 0x0FFULL, 0x300ULL, 0x3FFULL}) {
    const RunOutcome out = run_session(mask, 10, toff);
    EXPECT_EQ(out.violations, 0u) << "mask=" << mask << " toff=" << toff;
  }
}

INSTANTIATE_TEST_SUITE_P(Timings, CancelTimingSweep,
                         ::testing::Values(0.0, 0.5, 2.0, 8.0, 19.5, 30.0));

/// Two back-to-back sessions with the adversarial window spanning both:
/// catches cross-session interference (stale leases, leftover deadlines,
/// a second lease granted while the first is still unwinding).
struct DualSessionCase {
  std::uint64_t mask;
  double second_request_at;
};

class DualSessionSchedules : public ::testing::TestWithParam<double> {};

TEST_P(DualSessionSchedules, BackToBackSessionsStaySafe) {
  const double second_at = GetParam();
  // 64 structured masks: alternating patterns, prefix bursts, suffix
  // bursts — cheap but diverse coverage of a 16-packet window.
  for (std::uint64_t k = 0; k < 64; ++k) {
    const std::uint64_t mask =
        (k << 10) ^ (k * 0x9E37ULL) ^ ((k & 7ULL) << 13);
    auto state = std::make_shared<SharedSchedule>();
    state->mask = mask & 0xFFFF;
    state->bits = 16;
    const PatternConfig cfg = PatternConfig::laser_tracheotomy();
    sim::Rng rng(1);
    BuiltSystem built = build_pattern_system(cfg);
    hybrid::Engine engine(std::move(built.automata));
    net::StarNetwork network(engine.scheduler(), rng, 2);
    network.configure_all([&state] { return std::make_unique<SharedScheduleLoss>(state); },
                          net::ChannelConfig{0.0, 0.0, 0.0, 0.5});
    net::NetEventRouter router(network, built.automaton_of_entity);
    built.install_routes(router);
    engine.set_router(&router);
    router.attach(engine);
    PteMonitor monitor(MonitorParams::from_config(cfg));
    monitor.attach(engine, {0, 1, 2});
    engine.init();

    engine.run_until(14.0);
    engine.inject(2, events::cmd_request(2));
    engine.run_until(20.0);
    engine.inject(2, events::cmd_cancel(2));
    engine.run_until(second_at);
    engine.inject(2, events::cmd_request(2));
    engine.run_until(second_at + 200.0);
    monitor.finalize(second_at + 200.0);
    ASSERT_TRUE(monitor.violations().empty())
        << "mask=" << mask << " second_at=" << second_at << "\n"
        << monitor.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(SecondRequestTiming, DualSessionSchedules,
                         ::testing::Values(30.0, 45.0, 60.0, 75.0, 120.0));

TEST(Fuzz, SynthesizedConfigsUnderRandomLossNeverViolate) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::Rng meta(seed * 7919);
    SynthesisRequest req;
    req.n_remotes = 2 + meta.uniform_int(3);
    for (std::size_t i = 0; i + 1 < req.n_remotes; ++i) {
      req.t_risky_min.push_back(meta.uniform(0.2, 3.0));
      req.t_safe_min.push_back(meta.uniform(0.2, 2.0));
    }
    req.initializer_lease = meta.uniform(5.0, 25.0);
    req.t_wait_max = meta.uniform(0.5, 3.0);
    req.t_fb_min_0 = meta.uniform(1.0, 5.0);
    req.delivery_slack = 0.1;
    const PatternConfig cfg = synthesize(req);
    const double p = meta.uniform(0.0, 0.9);

    sim::Rng rng(seed);
    BuiltSystem built = build_pattern_system(cfg);
    hybrid::Engine engine(std::move(built.automata));
    net::StarNetwork network(engine.scheduler(), rng, cfg.n_remotes);
    network.configure_all([p] { return std::make_unique<net::BernoulliLoss>(p); },
                          net::ChannelConfig{0.002, 0.01, 0.001, 0.5});
    net::NetEventRouter router(network, built.automaton_of_entity);
    built.install_routes(router);
    engine.set_router(&router);
    router.attach(engine);
    PteMonitor monitor(MonitorParams::from_config(cfg));
    std::vector<std::size_t> entity_of(cfg.n_remotes + 1);
    for (std::size_t i = 0; i <= cfg.n_remotes; ++i) entity_of[i] = i;
    monitor.attach(engine, entity_of);
    engine.init();

    sim::Rng stim(seed ^ 0xBEEF);
    double t = 0.0;
    const std::size_t n = cfg.n_remotes;
    while (t < 600.0) {
      t += stim.exponential(10.0);
      const std::string root =
          stim.bernoulli(0.6) ? events::cmd_request(n) : events::cmd_cancel(n);
      engine.scheduler().schedule_at(t, [&engine, n, root] { engine.inject(n, root); });
    }
    engine.run_until(800.0);
    monitor.finalize(800.0);
    EXPECT_TRUE(monitor.violations().empty())
        << "seed=" << seed << " N=" << cfg.n_remotes << " p=" << p << "\n"
        << monitor.summary();
  }
}

TEST(Fuzz, ElaboratedVentilatorUnderRandomLossNeverViolates) {
  // Same property on the full case-study system (Theorem 2: elaboration
  // preserves the guarantee), across loss models.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (int model = 0; model < 3; ++model) {
      casestudy::TrialOptions opt;
      opt.seed = seed;
      opt.duration = 600.0;
      switch (model) {
        case 0:
          opt.loss_factory = [] { return std::make_unique<net::BernoulliLoss>(0.4); };
          break;
        case 1:
          opt.loss_factory = [] {
            return std::make_unique<net::GilbertElliottLoss>(0.2, 0.3, 0.1, 0.95);
          };
          break;
        default:
          break;  // default interference model
      }
      const casestudy::TrialResult r = casestudy::run_trial(opt);
      EXPECT_EQ(r.failures, 0u) << "seed=" << seed << " model=" << model << "\n"
                                << r.summary();
    }
  }
}

}  // namespace
}  // namespace ptecps::core
