// Unit tests for the PTE safety monitor, driven by scripted two-location
// entity automata so each violation class is produced deterministically.
#include <gtest/gtest.h>

#include <memory>

#include "core/monitor.hpp"
#include "hybrid/engine.hpp"
#include "util/text.hpp"

namespace ptecps::core {
namespace {

/// Entity stub: Safe --(?go.<i>)--> Risky --(?stop.<i>)--> Safe.
hybrid::Automaton make_entity_stub(std::size_t i) {
  using namespace hybrid;
  Automaton a(util::cat("entity", i));
  const LocId safe = a.add_location("Safe");
  const LocId risky = a.add_location("Risky", true);
  a.add_initial_location(safe);
  Edge go;
  go.src = safe;
  go.dst = risky;
  go.kind = TriggerKind::kEvent;
  go.trigger = SyncLabel::recv(util::cat("go.", i));
  a.add_edge(std::move(go));
  Edge stop;
  stop.src = risky;
  stop.dst = safe;
  stop.kind = TriggerKind::kEvent;
  stop.trigger = SyncLabel::recv(util::cat("stop.", i));
  a.add_edge(std::move(stop));
  return a;
}

struct MonitorHarness {
  hybrid::Engine engine;
  PteMonitor monitor;

  explicit MonitorHarness(MonitorParams params = default_params())
      : engine({make_entity_stub(1), make_entity_stub(2)}), monitor(std::move(params)) {
    monitor.attach(engine, {1, 2});
    engine.init();
  }

  static MonitorParams default_params() {
    MonitorParams p;
    p.n_entities = 2;
    p.dwell_bounds = {10.0, 10.0};
    p.t_risky_min = {2.0};
    p.t_safe_min = {1.0};
    return p;
  }

  void at(double t, std::size_t entity, const char* action) {
    engine.run_until(t);
    engine.inject(entity - 1, util::cat(action, ".", entity));
  }
};

TEST(Monitor, CleanNestingProducesNoViolations) {
  MonitorHarness h;
  h.at(1.0, 1, "go");
  h.at(4.0, 2, "go");    // 3 s after xi1: >= 2 s OK
  h.at(6.0, 2, "stop");
  h.at(8.0, 1, "stop");  // 2 s after xi2: >= 1 s OK
  h.engine.run_until(9.0);
  h.monitor.finalize(9.0);
  EXPECT_TRUE(h.monitor.violations().empty()) << h.monitor.summary();
  EXPECT_EQ(h.monitor.episodes(1), 1u);
  EXPECT_EQ(h.monitor.episodes(2), 1u);
  EXPECT_DOUBLE_EQ(h.monitor.max_dwell(1), 7.0);
}

TEST(Monitor, DwellBoundViolationOnExit) {
  MonitorHarness h;
  h.at(1.0, 1, "go");
  h.at(15.0, 1, "stop");  // 14 s > 10 s bound
  h.monitor.finalize(16.0);
  ASSERT_EQ(h.monitor.violations().size(), 1u);
  const PteViolation& v = h.monitor.violations()[0];
  EXPECT_EQ(v.kind, PteViolationKind::kDwellBound);
  EXPECT_EQ(v.entity, 1u);
  EXPECT_DOUBLE_EQ(v.measured, 14.0);
  EXPECT_DOUBLE_EQ(v.required, 10.0);
}

TEST(Monitor, DwellBoundViolationAtFinalize) {
  MonitorHarness h;
  h.at(1.0, 1, "go");
  h.engine.run_until(20.0);
  h.monitor.finalize(20.0);  // still risky after 19 s
  EXPECT_EQ(h.monitor.violation_count(PteViolationKind::kDwellBound), 1u);
  // Finalize is idempotent.
  h.monitor.finalize(20.0);
  EXPECT_EQ(h.monitor.violations().size(), 1u);
}

TEST(Monitor, OrderViolationUpperEntersFirst) {
  MonitorHarness h;
  h.at(1.0, 2, "go");  // xi2 risky while xi1 safe: p2 broken
  h.monitor.finalize(2.0);
  EXPECT_GE(h.monitor.violation_count(PteViolationKind::kOrderEmbedding), 1u);
}

TEST(Monitor, OrderViolationLowerExitsFirst) {
  MonitorHarness h;
  h.at(1.0, 1, "go");
  h.at(4.0, 2, "go");
  h.at(5.0, 1, "stop");  // xi1 leaves while xi2 still risky
  h.monitor.finalize(6.0);
  EXPECT_GE(h.monitor.violation_count(PteViolationKind::kOrderEmbedding), 1u);
}

TEST(Monitor, EnterSafeguardViolation) {
  MonitorHarness h;
  h.at(1.0, 1, "go");
  h.at(2.0, 2, "go");  // only 1 s after xi1; requires 2 s
  h.monitor.finalize(3.0);
  ASSERT_EQ(h.monitor.violation_count(PteViolationKind::kEnterSafeguard), 1u);
  const PteViolation& v = h.monitor.violations()[0];
  EXPECT_DOUBLE_EQ(v.measured, 1.0);
  EXPECT_DOUBLE_EQ(v.required, 2.0);
}

TEST(Monitor, ExitSafeguardViolation) {
  MonitorHarness h;
  h.at(1.0, 1, "go");
  h.at(4.0, 2, "go");
  h.at(6.0, 2, "stop");
  h.at(6.5, 1, "stop");  // only 0.5 s after xi2; requires 1 s
  h.monitor.finalize(7.0);
  ASSERT_EQ(h.monitor.violation_count(PteViolationKind::kExitSafeguard), 1u);
  const PteViolation& v = h.monitor.violations()[0];
  EXPECT_DOUBLE_EQ(v.measured, 0.5);
  EXPECT_DOUBLE_EQ(v.required, 1.0);
}

TEST(Monitor, MultipleEpisodesTracked) {
  MonitorHarness h;
  for (int k = 0; k < 3; ++k) {
    const double base = 1.0 + 10.0 * k;
    h.at(base, 1, "go");
    h.at(base + 3.0, 2, "go");
    h.at(base + 5.0, 2, "stop");
    h.at(base + 7.0, 1, "stop");
  }
  h.monitor.finalize(40.0);
  EXPECT_TRUE(h.monitor.violations().empty()) << h.monitor.summary();
  EXPECT_EQ(h.monitor.episodes(1), 3u);
  EXPECT_EQ(h.monitor.episodes(2), 3u);
  for (const auto& iv : h.monitor.intervals(1)) {
    EXPECT_TRUE(iv.closed);
    EXPECT_DOUBLE_EQ(iv.duration(), 7.0);  // go at base, stop at base+7
  }
}

TEST(Monitor, ReEnterBelowRiskyUpperFlagged) {
  MonitorHarness h;
  h.at(1.0, 1, "go");
  h.at(4.0, 2, "go");
  h.at(5.0, 1, "stop");  // order violation #1
  h.at(6.0, 1, "go");    // re-enter below risky upper: order violation #2
  h.monitor.finalize(7.0);
  EXPECT_GE(h.monitor.violation_count(PteViolationKind::kOrderEmbedding), 2u);
}

TEST(Monitor, RejectsBadWiring) {
  MonitorParams p = MonitorHarness::default_params();
  PteMonitor monitor(p);
  hybrid::Engine engine({make_entity_stub(1)});
  // Wrong mapping size.
  EXPECT_THROW(monitor.attach(engine, {1, 2}), std::invalid_argument);
  // Entity id out of range.
  EXPECT_THROW(monitor.attach(engine, {5}), std::invalid_argument);
  // Params shape checks.
  MonitorParams bad = p;
  bad.t_risky_min.clear();
  EXPECT_THROW(PteMonitor{bad}, std::invalid_argument);
}

TEST(Monitor, SummaryMentionsViolationsAndEpisodes) {
  MonitorHarness h;
  h.at(1.0, 2, "go");
  h.monitor.finalize(2.0);
  const std::string s = h.monitor.summary();
  EXPECT_NE(s.find("violation"), std::string::npos);
  EXPECT_NE(s.find("xi2"), std::string::npos);
}

}  // namespace
}  // namespace ptecps::core
