// Campaign runtime tests: label interning, equivalence of the interned
// router with the old string-scanning broadcast, SimulationContext vs
// hand-wired assembly, and thread-count independence of campaign reports.
#include <gtest/gtest.h>

#include <memory>

#include "campaign/context.hpp"
#include "campaign/runner.hpp"
#include "core/constraints.hpp"
#include "core/deployment.hpp"
#include "core/events.hpp"
#include "core/monitor.hpp"
#include "hybrid/engine.hpp"
#include "hybrid/label_table.hpp"
#include "net/bridge.hpp"
#include "net/loss_model.hpp"
#include "net/star_network.hpp"

namespace ptecps {
namespace {

using core::PatternConfig;

// ---------------------------------------------------------------------------
// LabelTable
// ---------------------------------------------------------------------------

TEST(LabelTable, InternRoundTrip) {
  hybrid::LabelTable table;
  const hybrid::LabelId a = table.intern("evt.xi2.to.xi0.Req");
  const hybrid::LabelId b = table.intern("evt.xi0.to.xi1.LeaseReq");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.intern("evt.xi2.to.xi0.Req"), a);  // idempotent
  EXPECT_EQ(table.root_of(a), "evt.xi2.to.xi0.Req");
  EXPECT_EQ(table.root_of(b), "evt.xi0.to.xi1.LeaseReq");
  EXPECT_EQ(table.size(), 2u);
}

TEST(LabelTable, DenseIdsAndMissingRoots) {
  hybrid::LabelTable table;
  EXPECT_EQ(table.find("nope"), hybrid::kNoLabel);
  EXPECT_EQ(table.intern("a"), 0u);
  EXPECT_EQ(table.intern("b"), 1u);
  EXPECT_EQ(table.intern("c"), 2u);
  EXPECT_EQ(table.find("b"), 1u);
  EXPECT_EQ(table.find("nope"), hybrid::kNoLabel);
}

TEST(LabelTable, EngineInternsEveryAutomatonLabel) {
  core::BuiltSystem built = core::build_pattern_system(PatternConfig::laser_tracheotomy());
  std::vector<std::vector<std::string>> roots;
  for (const auto& a : built.automata) roots.push_back(a.label_roots());
  hybrid::Engine engine(std::move(built.automata));
  for (const auto& automaton_roots : roots) {
    for (const auto& root : automaton_roots)
      EXPECT_NE(engine.label_id(root), hybrid::kNoLabel) << root;
  }
  EXPECT_EQ(engine.label_id("evt.not.a.real.root"), hybrid::kNoLabel);
}

// ---------------------------------------------------------------------------
// Interned broadcast == old string-scanning broadcast
// ---------------------------------------------------------------------------

/// The pre-interning BroadcastRouter algorithm, verbatim: scan every
/// automaton's edges for a string-equal reception root per emission.
class StringScanRouter final : public hybrid::EventRouter {
 public:
  void route(hybrid::Engine& engine, std::size_t src_automaton,
             const hybrid::SyncLabel& label, hybrid::LabelId) override {
    for (std::size_t i = 0; i < engine.num_automata(); ++i) {
      if (i == src_automaton) continue;
      bool receives = false;
      for (const auto& e : engine.automaton(i).edges()) {
        if (e.kind == hybrid::TriggerKind::kEvent && e.trigger.root == label.root) {
          receives = true;
          break;
        }
      }
      if (receives) engine.deliver(i, label.root);
    }
  }
};

TEST(BroadcastRouter, InternedRoutingMatchesStringScan) {
  // Run the same session twice — default (interned) broadcast vs the old
  // string-scanning algorithm — and require identical traces.
  auto run = [](hybrid::EventRouter* router) {
    core::BuiltSystem built = core::build_pattern_system(PatternConfig::laser_tracheotomy());
    hybrid::Engine engine(std::move(built.automata));
    if (router != nullptr) engine.set_router(router);
    engine.init();
    engine.run_until(14.0);
    engine.inject(2, core::events::cmd_request(2));
    engine.run_until(120.0);
    return engine;
  };
  StringScanRouter reference;
  const hybrid::Engine interned = run(nullptr);
  const hybrid::Engine scanned = run(&reference);

  EXPECT_EQ(interned.transitions_taken(), scanned.transitions_taken());
  const auto& a = interned.trace().records();
  const auto& b = scanned.trace().records();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].t, b[i].t) << "record " << i;
    EXPECT_EQ(a[i].automaton, b[i].automaton) << "record " << i;
    EXPECT_EQ(static_cast<int>(a[i].kind), static_cast<int>(b[i].kind)) << "record " << i;
    EXPECT_EQ(a[i].from, b[i].from) << "record " << i;
    EXPECT_EQ(a[i].to, b[i].to) << "record " << i;
    EXPECT_EQ(a[i].detail, b[i].detail) << "record " << i;
  }
}

// ---------------------------------------------------------------------------
// SimulationContext == hand-wired assembly (the bit-for-bit port property)
// ---------------------------------------------------------------------------

TEST(SimulationContext, MatchesHandWiredAssembly) {
  // The historical wiring, exactly as the benches used to write it.
  const PatternConfig cfg = PatternConfig::laser_tracheotomy();
  sim::Rng rng(3);
  core::BuiltSystem built = core::build_pattern_system(cfg);
  hybrid::Engine engine(std::move(built.automata));
  net::StarNetwork network(engine.scheduler(), rng, 2);
  network.configure_all([] { return std::make_unique<net::BernoulliLoss>(0.4); },
                        net::ChannelConfig{0.0, 0.0, 0.0, 0.5});
  net::NetEventRouter router(network, built.automaton_of_entity);
  built.install_routes(router);
  engine.set_router(&router);
  router.attach(engine);
  core::PteMonitor monitor(core::MonitorParams::from_config(cfg, 60.0));
  monitor.attach(engine, {0, 1, 2});
  engine.init();
  engine.run_until(14.0);
  engine.inject(2, core::events::cmd_request(2));
  engine.run_until(200.0);
  monitor.finalize(200.0);

  // The same run through a SimulationContext with the same seed.
  campaign::ScenarioSpec spec;
  spec.name = "equiv";
  spec.dwell_bound = 60.0;
  spec.loss = [](std::uint64_t) -> net::StarNetwork::LossFactory {
    return [] { return std::make_unique<net::BernoulliLoss>(0.4); };
  };
  spec.drive = [](campaign::SimulationContext& ctx) {
    ctx.run_until(14.0);
    ctx.inject(2, core::events::cmd_request(2));
    ctx.run_until(200.0);
  };
  campaign::SimulationContext ctx(spec, 3);
  const campaign::RunResult r = ctx.execute();

  EXPECT_EQ(r.violations, monitor.violations().size());
  EXPECT_EQ(r.session.transitions, engine.transitions_taken());
  EXPECT_EQ(r.session.episodes[1], monitor.episodes(1));
  EXPECT_EQ(r.session.episodes[2], monitor.episodes(2));
  EXPECT_DOUBLE_EQ(r.session.max_dwell[1], monitor.max_dwell(1));
  EXPECT_DOUBLE_EQ(r.session.max_dwell[2], monitor.max_dwell(2));
  EXPECT_EQ(r.network.sent, network.total_stats().sent);
  EXPECT_EQ(r.network.delivered, network.total_stats().delivered);
  EXPECT_EQ(r.network.lost, network.total_stats().lost);
}

TEST(SimulationContext, PrototypeSharingChangesNothing) {
  campaign::ScenarioSpec spec;
  spec.name = "proto";
  spec.loss = [](std::uint64_t) -> net::StarNetwork::LossFactory {
    return [] { return std::make_unique<net::BernoulliLoss>(0.3); };
  };
  spec.drive = [](campaign::SimulationContext& ctx) {
    ctx.run_until(14.0);
    ctx.inject(2, core::events::cmd_request(2));
    ctx.run_until(200.0);
  };
  const auto proto = campaign::ScenarioPrototype::build(spec);
  for (std::uint64_t seed : {7ull, 8ull, 9ull}) {
    campaign::SimulationContext fresh(spec, seed);
    campaign::SimulationContext shared(spec, seed, proto);
    const campaign::RunResult a = fresh.execute();
    const campaign::RunResult b = shared.execute();
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.session.transitions, b.session.transitions);
    EXPECT_EQ(a.network.sent, b.network.sent);
    EXPECT_EQ(a.network.delivered, b.network.delivered);
  }
}

// ---------------------------------------------------------------------------
// CampaignRunner
// ---------------------------------------------------------------------------

campaign::ScenarioSpec lossy_session_spec(const char* name, double p, std::size_t seeds) {
  campaign::ScenarioSpec spec;
  spec.name = name;
  spec.dwell_bound = 60.0;
  spec.loss = [p](std::uint64_t) -> net::StarNetwork::LossFactory {
    return [p] { return std::make_unique<net::BernoulliLoss>(p); };
  };
  spec.drive = [](campaign::SimulationContext& ctx) {
    ctx.run_until(14.0);
    ctx.inject(2, core::events::cmd_request(2));
    ctx.run_until(200.0);
  };
  spec.seed_range(500, seeds);
  return spec;
}

TEST(CampaignRunner, ReportIndependentOfThreadCount) {
  const std::vector<campaign::ScenarioSpec> specs = {
      lossy_session_spec("p30", 0.3, 12), lossy_session_spec("p60", 0.6, 12)};
  campaign::CampaignOptions one;
  one.threads = 1;
  campaign::CampaignOptions four;
  four.threads = 4;
  const campaign::CampaignReport a = campaign::CampaignRunner(one).run(specs);
  const campaign::CampaignReport b = campaign::CampaignRunner(four).run(specs);

  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  EXPECT_EQ(a.total_runs, b.total_runs);
  EXPECT_EQ(a.total_violations, b.total_violations);
  for (std::size_t s = 0; s < a.scenarios.size(); ++s) {
    const auto& sa = a.scenarios[s];
    const auto& sb = b.scenarios[s];
    ASSERT_EQ(sa.runs.size(), sb.runs.size());
    for (std::size_t i = 0; i < sa.runs.size(); ++i) {
      EXPECT_EQ(sa.runs[i].seed, sb.runs[i].seed);  // deterministic merge order
      EXPECT_EQ(sa.runs[i].violations, sb.runs[i].violations);
      EXPECT_EQ(sa.runs[i].session.transitions, sb.runs[i].session.transitions);
      EXPECT_EQ(sa.runs[i].network.sent, sb.runs[i].network.sent);
    }
  }
}

TEST(CampaignRunner, RunExceptionsAreIsolated) {
  campaign::ScenarioSpec bad;
  bad.name = "throws";
  bad.seeds = {1, 2};
  bad.custom_run = [](const campaign::ScenarioSpec&, std::uint64_t seed) -> campaign::RunResult {
    if (seed == 1) throw std::runtime_error("boom");
    campaign::RunResult r;
    r.seed = seed;
    return r;
  };
  const campaign::CampaignReport rep = campaign::CampaignRunner().run(bad);
  EXPECT_EQ(rep.failed_runs, 1u);
  ASSERT_EQ(rep.errors.size(), 1u);
  EXPECT_NE(rep.errors[0].find("boom"), std::string::npos);
  ASSERT_EQ(rep.scenarios[0].runs.size(), 1u);  // the surviving run
  EXPECT_EQ(rep.scenarios[0].runs[0].seed, 2u);
}

TEST(CampaignRunner, JsonReportIsWellFormedEnough) {
  const campaign::CampaignReport rep =
      campaign::CampaignRunner().run(lossy_session_spec("json", 0.2, 3));
  const std::string json = rep.json();
  EXPECT_NE(json.find("\"total_runs\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"json\""), std::string::npos);
  // Balanced braces/brackets (cheap sanity, not a parser).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ScenarioSpec, SeedHelpers) {
  campaign::ScenarioSpec spec;
  spec.seed_range(100, 4);
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{100, 101, 102, 103}));

  spec.forked_seeds(42, 4);
  ASSERT_EQ(spec.seeds.size(), 4u);
  // Deterministic and pairwise distinct.
  campaign::ScenarioSpec again;
  again.forked_seeds(42, 4);
  EXPECT_EQ(spec.seeds, again.seeds);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = i + 1; j < 4; ++j) EXPECT_NE(spec.seeds[i], spec.seeds[j]);
}

}  // namespace
}  // namespace ptecps
