// Tests for the offline PTE rule checker, including the cross-validation
// property: the online monitor and the offline containment checker must
// agree (both clean, or both violated) on the same executions.
#include <gtest/gtest.h>

#include <memory>

#include "core/deployment.hpp"
#include "core/events.hpp"
#include "core/rules.hpp"
#include "net/bridge.hpp"
#include "net/star_network.hpp"

namespace ptecps::core {
namespace {

MonitorParams two_entity_params() {
  MonitorParams p;
  p.n_entities = 2;
  p.dwell_bounds = {10.0, 10.0};
  p.t_risky_min = {2.0};
  p.t_safe_min = {1.0};
  return p;
}

RiskyInterval iv(double b, double e) { return RiskyInterval{b, e, true}; }

TEST(OfflineRules, CleanNestingPasses) {
  OfflineInput in;
  in.params = two_entity_params();
  in.intervals = {{iv(1.0, 9.0)}, {iv(3.5, 7.5)}};
  in.end = 20.0;
  EXPECT_TRUE(check_pte_offline(in).empty());
}

TEST(OfflineRules, DwellBoundCaught) {
  OfflineInput in;
  in.params = two_entity_params();
  in.intervals = {{iv(0.0, 15.0)}, {iv(3.0, 5.0)}};
  in.end = 20.0;
  const auto v = check_pte_offline(in);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, PteViolationKind::kDwellBound);
  EXPECT_DOUBLE_EQ(v[0].measured, 15.0);
}

TEST(OfflineRules, OpenIntervalJudgedAtHorizon) {
  OfflineInput in;
  in.params = two_entity_params();
  in.intervals = {{RiskyInterval{0.0, 0.0, false}}, {}};
  in.end = 30.0;
  const auto v = check_pte_offline(in);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, PteViolationKind::kDwellBound);
  EXPECT_DOUBLE_EQ(v[0].measured, 30.0);
}

TEST(OfflineRules, UncoveredUpperCaught) {
  OfflineInput in;
  in.params = two_entity_params();
  in.intervals = {{iv(10.0, 18.0)}, {iv(1.0, 3.0)}};  // upper before lower
  in.end = 20.0;
  const auto v = check_pte_offline(in);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, PteViolationKind::kOrderEmbedding);
}

TEST(OfflineRules, EnterSafeguardCaught) {
  OfflineInput in;
  in.params = two_entity_params();
  in.intervals = {{iv(1.0, 9.0)}, {iv(2.0, 5.0)}};  // only 1 s spacing, need 2
  in.end = 20.0;
  const auto v = check_pte_offline(in);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, PteViolationKind::kEnterSafeguard);
  EXPECT_DOUBLE_EQ(v[0].measured, 1.0);
}

TEST(OfflineRules, LowerExitsUnderUpperCaught) {
  OfflineInput in;
  in.params = two_entity_params();
  in.intervals = {{iv(1.0, 6.0)}, {iv(3.5, 8.0)}};  // upper outlives lower
  in.end = 20.0;
  const auto v = check_pte_offline(in);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, PteViolationKind::kOrderEmbedding);
}

TEST(OfflineRules, ExitSafeguardCaught) {
  OfflineInput in;
  in.params = two_entity_params();
  in.intervals = {{iv(1.0, 8.2)}, {iv(3.5, 7.5)}};  // 0.7 s < 1 s after upper
  in.end = 20.0;
  const auto v = check_pte_offline(in);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, PteViolationKind::kExitSafeguard);
  EXPECT_NEAR(v[0].measured, 0.7, 1e-9);
}

TEST(OfflineRules, MultipleEpisodesMatchedToCorrectCovers) {
  OfflineInput in;
  in.params = two_entity_params();
  in.intervals = {{iv(1.0, 9.0), iv(20.0, 28.0)}, {iv(3.5, 7.0), iv(22.5, 26.5)}};
  in.end = 40.0;
  EXPECT_TRUE(check_pte_offline(in).empty());
}

// Cross-validation: run the pattern through lossy networks; the online
// monitor and the offline checker must agree on every execution.
class OnlineOfflineAgreement : public ::testing::TestWithParam<double> {};

TEST_P(OnlineOfflineAgreement, MonitorAndContainmentCheckerAgree) {
  const double loss = GetParam();
  const PatternConfig cfg = PatternConfig::laser_tracheotomy();
  BuiltSystem built = build_pattern_system(cfg);
  hybrid::Engine engine(std::move(built.automata));
  sim::Rng rng(static_cast<std::uint64_t>(loss * 1000) + 5);
  net::StarNetwork network(engine.scheduler(), rng, 2);
  network.configure_all([loss] { return std::make_unique<net::BernoulliLoss>(loss); },
                        net::ChannelConfig{0.001, 0.002, 0.0, 0.5});
  net::NetEventRouter router(network, built.automaton_of_entity);
  built.install_routes(router);
  engine.set_router(&router);
  router.attach(engine);
  PteMonitor monitor(MonitorParams::from_config(cfg));
  monitor.attach(engine, {0, 1, 2});
  engine.init();

  sim::Rng stim(99);
  double t = 0.0;
  while (t < 900.0) {
    t += stim.exponential(22.0);
    const std::string root =
        stim.bernoulli(0.7) ? events::cmd_request(2) : events::cmd_cancel(2);
    engine.scheduler().schedule_at(t, [&engine, root] { engine.inject(2, root); });
  }
  engine.run_until(1100.0);
  monitor.finalize(1100.0);

  OfflineInput in;
  in.params = MonitorParams::from_config(cfg);
  in.intervals = {monitor.intervals(1), monitor.intervals(2)};
  in.end = 1100.0;
  const auto offline = check_pte_offline(in);

  EXPECT_TRUE(monitor.violations().empty()) << monitor.summary();
  EXPECT_TRUE(offline.empty());
  // Agreement in the violated case is exercised via an ablated config:
  PatternConfig bad = cfg;
  bad.entities[1].t_enter_max = bad.entities[0].t_enter_max;  // break c5
  BuiltSystem bad_built = build_pattern_system(bad);
  hybrid::Engine bad_engine(std::move(bad_built.automata));
  sim::Rng rng2(7);
  net::StarNetwork net2(bad_engine.scheduler(), rng2, 2);
  net2.configure_all([] { return std::make_unique<net::PerfectLink>(); },
                     net::ChannelConfig{0.0, 0.0, 0.0, 0.5});
  net::NetEventRouter router2(net2, bad_built.automaton_of_entity);
  bad_built.install_routes(router2);
  bad_engine.set_router(&router2);
  router2.attach(bad_engine);
  PteMonitor bad_monitor(MonitorParams::from_config(bad));
  bad_monitor.attach(bad_engine, {0, 1, 2});
  bad_engine.init();
  bad_engine.run_until(15.0);
  bad_engine.inject(2, events::cmd_request(2));
  bad_engine.run_until(150.0);
  bad_monitor.finalize(150.0);

  OfflineInput bad_in;
  bad_in.params = MonitorParams::from_config(bad);
  bad_in.intervals = {bad_monitor.intervals(1), bad_monitor.intervals(2)};
  bad_in.end = 150.0;
  const auto bad_offline = check_pte_offline(bad_in);
  EXPECT_FALSE(bad_monitor.violations().empty());
  EXPECT_FALSE(bad_offline.empty());
  EXPECT_EQ(bad_monitor.violation_count(PteViolationKind::kEnterSafeguard),
            bad_offline.size());
}

INSTANTIATE_TEST_SUITE_P(LossGrid, OnlineOfflineAgreement,
                         ::testing::Values(0.0, 0.15, 0.35, 0.6, 0.85));

}  // namespace
}  // namespace ptecps::core
