// Canonical scenario form and content digests (scenarios/canonical.hpp),
// property-tested across the whole registry: canonicalization is a fixed
// point, the digest is invariant under key reordering / whitespace /
// float re-rendering / metadata edits, and it moves for ANY semantic
// field change — the soundness bar for using it as a cache key.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "scenarios/canonical.hpp"
#include "scenarios/registry.hpp"
#include "scenarios/serialize.hpp"

namespace ptecps::scenarios {
namespace {

/// Every object's members in reverse order, recursively — a maximally
/// shuffled but semantically identical document.
util::Json reorder_keys(const util::Json& j) {
  if (j.is_object()) {
    util::Json out = util::Json::object();
    const util::Json::Object& members = j.as_object();
    for (auto it = members.rbegin(); it != members.rend(); ++it)
      out.set(it->first, reorder_keys(it->second));
    return out;
  }
  if (j.is_array()) {
    util::Json out = util::Json::array();
    for (const util::Json& e : j.as_array()) out.push_back(reorder_keys(e));
    return out;
  }
  return j;
}

TEST(Canonical, CanonicalizationIsAFixedPoint) {
  for (const RegistryEntry& entry : registry()) {
    const ScenarioDocument doc = export_document(entry);
    const std::string once = canonical_text(doc);
    EXPECT_EQ(canonical_text(document_from_text(once)), once) << entry.name;
    const std::string params_once = canonical_text(doc.params);
    EXPECT_EQ(canonical_text(params_from_json(util::Json::parse(params_once))),
              params_once)
        << entry.name;
  }
}

TEST(Canonical, DigestInvariantUnderRepresentation) {
  for (const RegistryEntry& entry : registry()) {
    const ScenarioDocument doc = export_document(entry);
    const std::string digest = params_digest(doc.params);

    // Whitespace / pretty-printing.
    const util::Json j = to_json(doc);
    EXPECT_EQ(text_digest(j.dump(2)), digest) << entry.name;
    EXPECT_EQ(text_digest(j.dump()), digest) << entry.name;
    EXPECT_EQ(text_digest(j.dump_canonical()), digest) << entry.name;

    // Key order.
    EXPECT_EQ(text_digest(reorder_keys(j).dump(2)), digest) << entry.name;

    // Metadata (summary, notes, expected verdict) is not content.
    ScenarioDocument meta = doc;
    meta.summary = "rewritten";
    meta.notes.push_back("an extra note");
    meta.expected.reset();
    EXPECT_EQ(text_digest(to_json(meta).dump(2)), digest) << entry.name;
  }
}

TEST(Canonical, DigestMovesForEverySemanticChange) {
  for (const RegistryEntry& entry : registry()) {
    const ScenarioDocument doc = export_document(entry);
    const std::string digest = params_digest(doc.params);

    ScenarioParams p = doc.params;
    p.name += "-renamed";
    EXPECT_NE(params_digest(p), digest) << entry.name;

    p = doc.params;
    p.horizon += 1.0;
    EXPECT_NE(params_digest(p), digest) << entry.name;

    p = doc.params;
    p.seed_base += 1;
    EXPECT_NE(params_digest(p), digest) << entry.name;

    p = doc.params;
    p.seed_count += 1;
    EXPECT_NE(params_digest(p), digest) << entry.name;

    p = doc.params;
    p.verify.max_losses += 1;
    EXPECT_NE(params_digest(p), digest) << entry.name;

    p = doc.params;
    p.verify.max_states += 1;
    EXPECT_NE(params_digest(p), digest) << entry.name;

    p = doc.params;
    p.mode = p.mode == campaign::RunMode::kBoth ? campaign::RunMode::kVerify
                                                : campaign::RunMode::kBoth;
    EXPECT_NE(params_digest(p), digest) << entry.name;
  }
}

TEST(Canonical, RegistryDigestsAreDistinct) {
  std::set<std::string> digests;
  for (const RegistryEntry& entry : registry())
    EXPECT_TRUE(digests.insert(params_digest(params_for(entry))).second)
        << "duplicate digest for " << entry.name;
  EXPECT_EQ(digests.size(), registry().size());
}

}  // namespace
}  // namespace ptecps::scenarios
