// Canonical scenario form and content digests (scenarios/canonical.hpp),
// property-tested across the whole registry: canonicalization is a fixed
// point, the digest is invariant under key reordering / whitespace /
// float re-rendering / metadata edits, and it moves for ANY semantic
// field change — the soundness bar for using it as a cache key.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "attack/attacker.hpp"
#include "scenarios/canonical.hpp"
#include "scenarios/registry.hpp"
#include "scenarios/serialize.hpp"

namespace ptecps::scenarios {
namespace {

/// Every object's members in reverse order, recursively — a maximally
/// shuffled but semantically identical document.
util::Json reorder_keys(const util::Json& j) {
  if (j.is_object()) {
    util::Json out = util::Json::object();
    const util::Json::Object& members = j.as_object();
    for (auto it = members.rbegin(); it != members.rend(); ++it)
      out.set(it->first, reorder_keys(it->second));
    return out;
  }
  if (j.is_array()) {
    util::Json out = util::Json::array();
    for (const util::Json& e : j.as_array()) out.push_back(reorder_keys(e));
    return out;
  }
  return j;
}

TEST(Canonical, CanonicalizationIsAFixedPoint) {
  for (const RegistryEntry& entry : registry()) {
    const ScenarioDocument doc = export_document(entry);
    const std::string once = canonical_text(doc);
    EXPECT_EQ(canonical_text(document_from_text(once)), once) << entry.name;
    const std::string params_once = canonical_text(doc.params);
    EXPECT_EQ(canonical_text(params_from_json(util::Json::parse(params_once))),
              params_once)
        << entry.name;
  }
}

TEST(Canonical, DigestInvariantUnderRepresentation) {
  for (const RegistryEntry& entry : registry()) {
    const ScenarioDocument doc = export_document(entry);
    const std::string digest = params_digest(doc.params);

    // Whitespace / pretty-printing.
    const util::Json j = to_json(doc);
    EXPECT_EQ(text_digest(j.dump(2)), digest) << entry.name;
    EXPECT_EQ(text_digest(j.dump()), digest) << entry.name;
    EXPECT_EQ(text_digest(j.dump_canonical()), digest) << entry.name;

    // Key order.
    EXPECT_EQ(text_digest(reorder_keys(j).dump(2)), digest) << entry.name;

    // Metadata (summary, notes, expected verdict) is not content.
    ScenarioDocument meta = doc;
    meta.summary = "rewritten";
    meta.notes.push_back("an extra note");
    meta.expected.reset();
    EXPECT_EQ(text_digest(to_json(meta).dump(2)), digest) << entry.name;
  }
}

TEST(Canonical, DigestMovesForEverySemanticChange) {
  for (const RegistryEntry& entry : registry()) {
    const ScenarioDocument doc = export_document(entry);
    const std::string digest = params_digest(doc.params);

    ScenarioParams p = doc.params;
    p.name += "-renamed";
    EXPECT_NE(params_digest(p), digest) << entry.name;

    p = doc.params;
    p.horizon += 1.0;
    EXPECT_NE(params_digest(p), digest) << entry.name;

    p = doc.params;
    p.seed_base += 1;
    EXPECT_NE(params_digest(p), digest) << entry.name;

    p = doc.params;
    p.seed_count += 1;
    EXPECT_NE(params_digest(p), digest) << entry.name;

    p = doc.params;
    p.verify.max_losses += 1;
    EXPECT_NE(params_digest(p), digest) << entry.name;

    p = doc.params;
    p.verify.max_states += 1;
    EXPECT_NE(params_digest(p), digest) << entry.name;

    p = doc.params;
    p.mode = p.mode == campaign::RunMode::kBoth ? campaign::RunMode::kVerify
                                                : campaign::RunMode::kBoth;
    EXPECT_NE(params_digest(p), digest) << entry.name;
  }
}

TEST(Canonical, DigestMovesForEveryAttackerField) {
  // The attacker model is a cache-key ingredient: any field that changes
  // either lowering (sampler loss model or prover ammunition) must move
  // the digest, for EVERY family.  A field the canonical form dropped
  // would alias two different attacks onto one cached verdict.
  const attack::AttackerModel families[] = {
      attack::AttackerModel::bernoulli(0.3),
      attack::AttackerModel::gilbert_elliott(0.05, 0.4, 0.02, 0.8),
      attack::AttackerModel::interference(2.0, 0.5, 0.9, 0.02, 0.25),
      attack::AttackerModel::scripted({true, false, true}),
      attack::AttackerModel::sustained_jammer(0.8),
      attack::AttackerModel::reactive_jammer(0.8, 1.0, 0.9),
  };
  for (const attack::AttackerModel& family : families) {
    ScenarioParams base;
    base.name = "digest-probe";
    base.attacker = family;
    base.attacker.with_intensity(0.5).with_budget(4);
    const std::string digest = params_digest(base);
    const std::string kind = attack::attacker_kind_str(family.kind);

    auto expect_moves = [&](const char* field, auto&& mutate) {
      ScenarioParams p = base;
      mutate(p.attacker);
      EXPECT_NE(params_digest(p), digest) << kind << ": " << field;
    };
    using attack::AttackerModel;
    expect_moves("kind", [](AttackerModel& a) {
      a.kind = a.kind == AttackerModel::Kind::kBernoulli
                   ? AttackerModel::Kind::kSustainedJammer
                   : AttackerModel::Kind::kBernoulli;
    });
    expect_moves("intensity", [](AttackerModel& a) { a.intensity = 0.75; });
    expect_moves("budget", [](AttackerModel& a) { a.budget += 1; });
    switch (family.kind) {
      case AttackerModel::Kind::kBernoulli:
        expect_moves("p", [](AttackerModel& a) { a.p += 0.1; });
        break;
      case AttackerModel::Kind::kGilbertElliott:
        expect_moves("p_gb", [](AttackerModel& a) { a.p_gb += 0.01; });
        expect_moves("p_bg", [](AttackerModel& a) { a.p_bg += 0.01; });
        expect_moves("loss_good", [](AttackerModel& a) { a.loss_good += 0.01; });
        expect_moves("loss_bad", [](AttackerModel& a) { a.loss_bad += 0.01; });
        break;
      case AttackerModel::Kind::kInterference:
        expect_moves("period", [](AttackerModel& a) { a.period += 1.0; });
        expect_moves("burst", [](AttackerModel& a) { a.burst += 0.1; });
        expect_moves("loss_burst", [](AttackerModel& a) { a.loss_burst += 0.05; });
        expect_moves("loss_idle", [](AttackerModel& a) { a.loss_idle += 0.01; });
        expect_moves("phase", [](AttackerModel& a) { a.phase += 0.5; });
        break;
      case AttackerModel::Kind::kScripted:
        expect_moves("script", [](AttackerModel& a) { a.script.push_back(true); });
        break;
      case AttackerModel::Kind::kSustainedJammer:
        expect_moves("kill_prob", [](AttackerModel& a) { a.kill_prob += 0.05; });
        break;
      case AttackerModel::Kind::kReactiveJammer:
        expect_moves("kill_prob", [](AttackerModel& a) { a.kill_prob += 0.05; });
        expect_moves("sense_prob", [](AttackerModel& a) { a.sense_prob -= 0.1; });
        expect_moves("jam_len", [](AttackerModel& a) { a.jam_len += 0.25; });
        break;
      case AttackerModel::Kind::kNone:
        break;
    }
  }
}

TEST(Canonical, RegistryDigestsAreDistinct) {
  std::set<std::string> digests;
  for (const RegistryEntry& entry : registry())
    EXPECT_TRUE(digests.insert(params_digest(params_for(entry))).second)
        << "duplicate digest for " << entry.name;
  EXPECT_EQ(digests.size(), registry().size());
}

}  // namespace
}  // namespace ptecps::scenarios
