// Unit tests for the simulation kernel: scheduler ordering/cancellation
// and the deterministic RNG.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace ptecps::sim {
namespace {

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3.0, [&] { order.push_back(3); });
  s.schedule_at(1.0, [&] { order.push_back(1); });
  s.schedule_at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Scheduler, TiesAreFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) s.schedule_at(1.0, [&order, i] { order.push_back(i); });
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  int fired = 0;
  const EventHandle h = s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(s.cancel(h));
  EXPECT_FALSE(s.cancel(h));  // double cancel
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(s.cancel(EventHandle{}));  // empty handle
}

TEST(Scheduler, RunUntilStopsAtBoundaryAndAdvancesNow) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(1.0, [&] { ++fired; });
  s.schedule_at(5.0, [&] { ++fired; });
  s.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run_until(5.0);
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, CallbacksMayScheduleMore) {
  Scheduler s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) s.schedule_in(1.0, chain);
  };
  s.schedule_at(0.0, chain);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(s.now(), 4.0);
}

TEST(Scheduler, RejectsPastScheduling) {
  Scheduler s;
  s.schedule_at(5.0, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Scheduler, NextTimeSkipsCancelled) {
  Scheduler s;
  const EventHandle h = s.schedule_at(1.0, [] {});
  s.schedule_at(2.0, [] {});
  s.cancel(h);
  EXPECT_DOUBLE_EQ(s.next_time(), 2.0);
}

TEST(Scheduler, SlabReusesSlotsAfterCancel) {
  // The dwell-timeout hot path: schedule/cancel churn must reuse slab
  // slots instead of growing storage.
  Scheduler s;
  for (int i = 0; i < 10000; ++i) {
    const EventHandle h = s.schedule_in(1.0, [] {});
    ASSERT_TRUE(s.cancel(h));
  }
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_LE(s.slab_slots(), 2u);  // one slot reused throughout
}

TEST(Scheduler, SlabReusesSlotsAfterExecution) {
  Scheduler s;
  std::uint64_t fired = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 8; ++i) s.schedule_in(0.5, [&] { ++fired; });
    s.run();
  }
  EXPECT_EQ(fired, 800u);
  EXPECT_LE(s.slab_slots(), 8u);
}

TEST(Scheduler, StaleHandleCannotCancelSlotReuser) {
  // Generation safety: a handle whose event already ran (or was
  // cancelled) must stay dead even when its slot is reused.
  Scheduler s;
  const EventHandle stale = s.schedule_at(1.0, [] {});
  ASSERT_TRUE(s.cancel(stale));  // slot goes back to the free list
  int fired = 0;
  const EventHandle fresh = s.schedule_at(2.0, [&] { ++fired; });
  EXPECT_EQ(fresh.slot, stale.slot);  // slab reused the slot...
  EXPECT_NE(fresh.gen, stale.gen);    // ...under a new generation
  EXPECT_FALSE(s.cancel(stale));      // stale handle is inert
  s.run();
  EXPECT_EQ(fired, 1);  // the reuser ran

  // Same for a handle that was consumed by execution.
  const EventHandle ran = s.schedule_at(3.0, [] {});
  s.run();
  s.schedule_at(4.0, [&] { ++fired; });  // reuses ran's slot
  EXPECT_FALSE(s.cancel(ran));
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Scheduler, FifoTieBreakSurvivesInterleavedCancel) {
  // Cancelling events between same-instant schedules must not disturb the
  // FIFO order of the survivors — cancellation is lazy, so stale queue
  // entries sit in front of live ones at the same timestamp.
  Scheduler s;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 50; ++i) {
    doomed.push_back(s.schedule_at(1.0, [&order] { order.push_back(-1); }));
    s.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  for (const EventHandle h : doomed) ASSERT_TRUE(s.cancel(h));
  s.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, CancelDuringExecutionOfSameInstantBatch) {
  // An event may cancel a later event scheduled at the same instant.
  Scheduler s;
  int fired = 0;
  EventHandle second;
  s.schedule_at(1.0, [&] {
    ++fired;
    EXPECT_TRUE(s.cancel(second));
  });
  second = s.schedule_at(1.0, [&] { fired += 100; });
  s.schedule_at(1.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42), c(43);
  bool all_equal = true, any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t va = a.next_u64(), vb = b.next_u64(), vc = c.next_u64();
    all_equal = all_equal && va == vb;
    any_diff = any_diff || va != vc;
  }
  EXPECT_TRUE(all_equal);
  EXPECT_TRUE(any_diff);
}

TEST(Rng, Uniform01InRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(30.0);
  EXPECT_NEAR(sum / n, 30.0, 0.5);
}

TEST(Rng, BernoulliRateMatches) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_FALSE(r.bernoulli(0.0));
  EXPECT_TRUE(r.bernoulli(1.0));
}

TEST(Rng, NormalMoments) {
  Rng r(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(sq / n - mean * mean, 4.0, 0.1);
}

TEST(Rng, UniformIntUnbiasedSmallRange) {
  Rng r(19);
  int counts[5] = {0, 0, 0, 0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform_int(5)];
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.01);
}

TEST(Rng, UniformIntRejectionSampledNoModuloBias) {
  // Property: for n = 3 * 2^62, a modulo-reducing implementation maps the
  // 2^62 raw values in [n, 2^64) back onto [0, 2^62), so outcomes below
  // 2^62 appear with probability 1/2 instead of the unbiased 1/3.  A
  // rejection-sampled uniform_int keeps all three thirds at 1/3 — this
  // test fails decisively (50% vs 33%) if the rejection loop is removed.
  const std::uint64_t third = 1ULL << 62;
  const std::uint64_t n = 3 * third;
  const int samples = 30000;
  int low = 0;
  Rng r(101);
  for (int i = 0; i < samples; ++i) {
    const std::uint64_t v = r.uniform_int(n);
    ASSERT_LT(v, n);
    if (v < third) ++low;
  }
  const double freq = static_cast<double>(low) / samples;
  EXPECT_NEAR(freq, 1.0 / 3.0, 0.02);  // biased implementation gives ~0.50
}

TEST(Rng, UniformIntCoversFullRangeNearPowerOfTwo) {
  // n one above a power of two exercises the rejection threshold; every
  // value must stay in range and the extremes must be reachable.
  const std::uint64_t n = (1ULL << 32) + 1;
  Rng r(7);
  std::uint64_t max_seen = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = r.uniform_int(n);
    ASSERT_LT(v, n);
    max_seen = std::max(max_seen, v);
  }
  EXPECT_GT(max_seen, n - n / 8);  // the top of the range is reachable
}

TEST(Rng, ForkedStreamsDecorrelated) {
  Rng parent(23);
  Rng a = parent.fork(0);
  Rng b = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += a.next_u64() == b.next_u64() ? 1 : 0;
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace ptecps::sim
