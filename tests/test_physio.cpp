// Tests for the simulated physical world of the case study: patient
// physiology (the §V human subject substitute), the oximeter sensor and
// the surgeon process — verifying that the physical dynamics justify the
// paper's configuration choices (3 s oxygen washout before lasing, SpO2
// threshold aborts, bounded breath-hold).
#include <gtest/gtest.h>

#include "casestudy/oximeter.hpp"
#include "casestudy/patient.hpp"
#include "casestudy/surgeon.hpp"
#include "casestudy/trial.hpp"
#include "core/events.hpp"

namespace ptecps::casestudy {
namespace {

/// A trivial host engine so the patient has a scheduler to step on.
hybrid::Automaton idle_automaton() {
  hybrid::Automaton a("idle");
  a.add_location("only");
  a.add_initial_location(0);
  return a;
}

struct PhysioHarness {
  hybrid::Engine engine{std::vector<hybrid::Automaton>{idle_automaton()}};
  bool ventilated = true;
  bool laser = false;
  PatientModel patient;

  explicit PhysioHarness(PatientParams params = {})
      : patient(engine, params, [this] { return ventilated; }, [this] { return laser; }) {
    engine.init();
    patient.start();
  }
  void run_for(double dt) { engine.run_until(engine.now() + dt); }
};

TEST(Patient, SteadyStateWhileVentilated) {
  PhysioHarness h;
  h.run_for(60.0);
  EXPECT_NEAR(h.patient.lung_o2(), 0.95, 0.01);
  EXPECT_NEAR(h.patient.spo2(), 0.99, 0.01);
  EXPECT_NEAR(h.patient.trachea_o2(), 0.90, 0.01);
  EXPECT_EQ(h.patient.fire_events(), 0u);
}

TEST(Patient, TracheaWashoutJustifiesEnterSafeguard) {
  // The paper's T^min_risky:1→2 = 3 s exists so the trachea deoxygenates
  // before the laser fires.  After 3 s of pause the trachea O2 fraction
  // must be below the ignition threshold.
  PhysioHarness h;
  h.run_for(30.0);  // settle ventilated
  h.ventilated = false;
  h.run_for(3.0);
  EXPECT_LT(h.patient.trachea_o2(), PatientParams{}.ignition_threshold);
  // ... and 1 s is NOT enough (the safeguard is load-bearing):
  PhysioHarness h2;
  h2.run_for(30.0);
  h2.ventilated = false;
  h2.run_for(1.0);
  EXPECT_GT(h2.patient.trachea_o2(), PatientParams{}.ignition_threshold);
}

TEST(Patient, FireWhenLasingIntoOxygenRichTrachea) {
  PhysioHarness h;
  h.run_for(30.0);
  h.laser = true;  // laser on while still ventilated: ignition hazard
  h.run_for(1.0);
  EXPECT_EQ(h.patient.fire_events(), 1u);
  // The latch holds while the laser stays on...
  h.run_for(5.0);
  EXPECT_EQ(h.patient.fire_events(), 1u);
  // ...and re-arms after it turns off and on again.
  h.laser = false;
  h.run_for(1.0);
  h.laser = true;
  h.run_for(1.0);
  EXPECT_EQ(h.patient.fire_events(), 2u);
}

TEST(Patient, BreathHoldDesaturatesPastThreshold) {
  // A stuck (no-lease) pause must eventually drive SpO2 below the 92 %
  // abort threshold — that is the supervisor's recovery trigger in the
  // baseline trials — but a lease-bounded 44 s pause must not crash it
  // catastrophically.
  PhysioHarness h;
  h.run_for(60.0);
  h.ventilated = false;
  h.run_for(44.0);  // worst-case with-lease pause
  const double spo2_lease_worst = h.patient.spo2();
  EXPECT_GT(spo2_lease_worst, 0.90);
  h.run_for(76.0);  // a 2-minute stuck pause
  EXPECT_LT(h.patient.spo2(), 0.92);
  EXPECT_GE(h.patient.lung_o2(), PatientParams{}.lung_floor);
  // Recovery once ventilation resumes.
  h.ventilated = true;
  h.run_for(60.0);
  EXPECT_GT(h.patient.spo2(), 0.95);
}

TEST(Patient, MinSpO2Tracked) {
  PhysioHarness h;
  h.run_for(20.0);
  h.ventilated = false;
  h.run_for(60.0);
  h.ventilated = true;
  h.run_for(60.0);
  EXPECT_LT(h.patient.min_spo2(), h.patient.spo2());
}

TEST(Oximeter, QuantizesAndWritesSupervisorVariable) {
  hybrid::Automaton supervisor("sup");
  const hybrid::VarId spo2 = supervisor.add_var("SpO2_measured", 0.98);
  supervisor.add_location("only");
  supervisor.add_initial_location(0);
  hybrid::Engine engine({std::move(supervisor)});
  bool ventilated = true;
  PatientModel patient(engine, PatientParams{}, [&] { return ventilated; },
                       [] { return false; });
  OximeterParams oparams;
  oparams.noise_sd = 0.0;  // deterministic for the quantization check
  OximeterProcess oximeter(engine, 0, spo2, patient, sim::Rng(5), oparams);
  engine.init();
  patient.start();
  oximeter.start();
  engine.run_until(10.0);
  EXPECT_GT(oximeter.samples(), 25u);  // ~3 Hz
  const double reading = engine.var(0, spo2);
  // Quantized to 1 %: the reading times 100 is integral.
  EXPECT_NEAR(reading * 100.0, std::round(reading * 100.0), 1e-9);
  EXPECT_NEAR(reading, patient.spo2(), 0.011);
}

TEST(Surgeon, ArmsTonInFallBackAndToffWhenEmitting) {
  // Surgeon drives the real initializer automaton through a full cycle.
  const auto cfg = core::PatternConfig::laser_tracheotomy();
  hybrid::Automaton scalpel = core::make_initializer(cfg);
  hybrid::Engine engine({std::move(scalpel)});
  SurgeonParams params;
  params.mean_ton = 5.0;
  params.mean_toff = 4.0;
  SurgeonProcess surgeon(engine, 0, 2, sim::Rng(9), params);
  engine.init();
  // The request fires eventually; without a supervisor the approval never
  // comes, so the scalpel bounces Requesting -> Fall-Back and re-arms.
  engine.run_until(120.0);
  EXPECT_GE(surgeon.requests(), 3u);
  EXPECT_EQ(surgeon.cancels(), 0u);  // never reached Risky Core
  // Now walk it into emission by hand: deliver the approval.
  engine.run_until(engine.now());
  // Wait until it is Requesting again, then approve.
  const hybrid::LocId requesting = engine.automaton(0).location_id("Requesting");
  while (engine.current_location(0) != requesting) engine.run_until(engine.now() + 0.5);
  engine.deliver(0, core::events::approve(2));
  engine.run_until(engine.now() + cfg.entity(2).t_enter_max + 0.1);
  // Emission started; Toff ~ Exp(4) may already have cancelled it.
  const std::string loc = engine.current_location_name(0);
  EXPECT_TRUE(loc == "Risky Core" || loc == "Exiting 1") << loc;
  // The surgeon cancels (or the lease expires) and the Ton timer re-arms
  // at Fall-Back: within 30 s the scalpel is home or requesting again.
  engine.run_until(engine.now() + 30.0);
  EXPECT_GE(surgeon.cancels(), 1u);
  const std::string end_loc = engine.current_location_name(0);
  EXPECT_TRUE(end_loc == "Fall-Back" || end_loc == "Requesting") << end_loc;
}

TEST(Trial, NoLeaseForgetfulSurgeonCausesFireHazard) {
  // Without leases and with a surgeon who never cancels, the laser keeps
  // emitting after the supervisor's bookkeeping gives up and resumes the
  // ventilator: oxygen flows into a lasing airway — the paper's
  // motivating catastrophe, visible as a physical fire event plus
  // embedding violations.  (The lease variant of the same scenario is
  // WithLeaseSurvivesForgetfulSurgeonWithoutAborts below.)
  TrialOptions opt;
  opt.seed = 31;
  opt.duration = 1800.0;
  opt.with_lease = false;
  opt.surgeon.mean_toff = 1e9;  // surgeon always forgets
  const TrialResult r = run_trial(opt);
  EXPECT_GT(r.failures, 0u) << r.summary();
  EXPECT_GT(r.max_emission, 60.0);
  EXPECT_GT(r.fire_events, 0u);
  EXPECT_EQ(r.evt_to_stop, 0u);
}

TEST(Trial, WithLeaseSurvivesForgetfulSurgeonWithoutAborts) {
  TrialOptions opt;
  opt.seed = 31;
  opt.duration = 1800.0;
  opt.with_lease = true;
  opt.surgeon.mean_toff = 1e9;
  const TrialResult r = run_trial(opt);
  EXPECT_EQ(r.failures, 0u) << r.summary();
  EXPECT_EQ(r.evt_to_stop, r.emissions);  // every emission ended by lease
  EXPECT_GT(r.min_spo2, 0.90);            // pauses bounded: no deep desaturation
}

}  // namespace
}  // namespace ptecps::casestudy
