// Tests for event naming, system assembly (routing-table completeness),
// and the duplication-tolerance extension (the pattern's receivers are
// state-gated, so at-least-once delivery cannot break PTE safety).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/config.hpp"
#include "core/deployment.hpp"
#include "core/events.hpp"
#include "core/monitor.hpp"
#include "core/pattern.hpp"
#include "core/synthesis.hpp"
#include "hybrid/structural.hpp"
#include "net/bridge.hpp"
#include "net/star_network.hpp"

namespace ptecps::core {
namespace {

namespace ev = events;

TEST(Events, NamesFollowThePaperScheme) {
  EXPECT_EQ(ev::req(2), "evt.xi2.to.xi0.Req");
  EXPECT_EQ(ev::cancel_req(2), "evt.xi2.to.xi0.Cancel");
  EXPECT_EQ(ev::lease_req(1), "evt.xi0.to.xi1.LeaseReq");
  EXPECT_EQ(ev::lease_approve(1), "evt.xi1.to.xi0.LeaseApprove");
  EXPECT_EQ(ev::lease_deny(1), "evt.xi1.to.xi0.LeaseDeny");
  EXPECT_EQ(ev::approve(2), "evt.xi0.to.xi2.Approve");
  EXPECT_EQ(ev::cancel(1), "evt.xi0.to.xi1.Cancel");
  EXPECT_EQ(ev::abort_lease(1), "evt.xi0.to.xi1.Abort");
  EXPECT_EQ(ev::exit(1), "evt.xi1.to.xi0.Exit");
}

TEST(Events, AllDistinct) {
  std::set<std::string> names;
  for (std::size_t i = 1; i <= 3; ++i) {
    names.insert(ev::lease_req(i));
    names.insert(ev::lease_approve(i));
    names.insert(ev::lease_deny(i));
    names.insert(ev::cancel(i));
    names.insert(ev::abort_lease(i));
    names.insert(ev::exit(i));
    names.insert(ev::to_stop(i));
    names.insert(ev::cmd_request(i));
    names.insert(ev::cmd_cancel(i));
  }
  names.insert(ev::req(3));
  names.insert(ev::cancel_req(3));
  names.insert(ev::approve(3));
  EXPECT_EQ(names.size(), 9u * 3u + 3u);
}

TEST(Deployment, RouteTableCoversEveryWirelessLabel) {
  for (std::size_t n : {2u, 3u, 5u}) {
    SynthesisRequest req;
    req.n_remotes = n;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      req.t_risky_min.push_back(1.0);
      req.t_safe_min.push_back(0.5);
    }
    const PatternConfig cfg = synthesize(req);
    const BuiltSystem sys = build_pattern_system(cfg);
    ASSERT_EQ(sys.automata.size(), n + 1);

    std::set<std::string> routed;
    for (const auto& r : sys.wireless_routes) routed.insert(r.root);

    // Every ??-received root of every automaton must be routed, and every
    // !-emitted root except the internal to_stop markers must be routed.
    for (const auto& a : sys.automata) {
      for (const auto& label : a.labels()) {
        if (label.prefix == hybrid::SyncPrefix::kRecvUnreliable) {
          EXPECT_TRUE(routed.count(label.root))
              << a.name() << " receives unrouted '" << label.root << "'";
        }
        if (label.prefix == hybrid::SyncPrefix::kSend) {
          EXPECT_TRUE(routed.count(label.root))
              << a.name() << " sends unrouted '" << label.root << "'";
        }
      }
    }
    // And the routes' endpoints are consistent with the naming.
    for (const auto& r : sys.wireless_routes)
      EXPECT_TRUE(r.src == 0 || r.dst == 0) << r.root << " not star-routed";
  }
}

TEST(Deployment, SupervisorVariablesExposed) {
  const PatternConfig cfg = PatternConfig::laser_tracheotomy();
  const hybrid::Automaton sup = make_supervisor(cfg);
  EXPECT_TRUE(sup.has_var(supervisor_clock_var()));
  EXPECT_TRUE(sup.has_var(supervisor_deadline_var(1)));
  EXPECT_TRUE(sup.has_var(supervisor_deadline_var(2)));
  EXPECT_TRUE(sup.has_var("approval_val"));
  EXPECT_EQ(sup.num_locations(), 3u * 2u + 1u);
}

TEST(Deployment, PatternTolleratesDuplicateDeliveries) {
  // Extension beyond the paper's loss-only fault model: every packet may
  // additionally be delivered twice.  The receivers are state-gated
  // (events only fire enabled edges), so duplicates must change nothing
  // about safety.
  const PatternConfig cfg = PatternConfig::laser_tracheotomy();
  BuiltSystem built = build_pattern_system(cfg);
  hybrid::Engine engine(std::move(built.automata));
  sim::Rng rng(61);
  net::StarNetwork network(engine.scheduler(), rng, 2);
  net::ChannelConfig channel;
  channel.delay = 0.001;
  channel.duplicate_prob = 0.8;
  channel.duplicate_lag = 0.05;
  network.configure_all([] { return std::make_unique<net::BernoulliLoss>(0.25); }, channel);
  net::NetEventRouter router(network, built.automaton_of_entity);
  built.install_routes(router);
  engine.set_router(&router);
  router.attach(engine);
  PteMonitor monitor(MonitorParams::from_config(cfg));
  monitor.attach(engine, {0, 1, 2});
  engine.init();

  sim::Rng stim(62);
  double t = 0.0;
  while (t < 1200.0) {
    t += stim.exponential(20.0);
    const std::string root = stim.bernoulli(0.7) ? ev::cmd_request(2) : ev::cmd_cancel(2);
    engine.scheduler().schedule_at(t, [&engine, root] { engine.inject(2, root); });
  }
  engine.run_until(1400.0);
  monitor.finalize(1400.0);
  EXPECT_TRUE(monitor.violations().empty()) << monitor.summary();
  EXPECT_GT(network.total_stats().duplicated, 0u);  // duplicates really flowed
  EXPECT_GT(monitor.episodes(2), 0u);               // and sessions really ran
}

TEST(Deployment, NoLeaseVariantLacksExpiryEdges) {
  const PatternConfig cfg = PatternConfig::laser_tracheotomy();
  const BuiltSystem with = build_pattern_system(cfg, ApprovalSpec{}, true);
  const BuiltSystem without = build_pattern_system(cfg, ApprovalSpec{}, false);
  // The lease variant has one more edge per remote entity (the Risky
  // Core expiry), the baseline has retransmission self-loops instead.
  const auto count_edges_from = [](const hybrid::Automaton& a, const char* loc,
                                   hybrid::TriggerKind kind) {
    std::size_t n = 0;
    for (hybrid::EdgeId e : a.edges_from(a.location_id(loc)))
      if (a.edge(e).kind == kind) ++n;
    return n;
  };
  EXPECT_EQ(count_edges_from(with.automata[1], "Risky Core", hybrid::TriggerKind::kTimed),
            1u);
  EXPECT_EQ(count_edges_from(without.automata[1], "Risky Core", hybrid::TriggerKind::kTimed),
            0u);
  EXPECT_EQ(count_edges_from(with.automata[0], "Cancel Lease xi1",
                             hybrid::TriggerKind::kTimed),
            0u);
  EXPECT_EQ(count_edges_from(without.automata[0], "Cancel Lease xi1",
                             hybrid::TriggerKind::kTimed),
            1u);  // the retransmission self-loop
}

TEST(Deployment, AblatedSupervisorDiffersStructurally) {
  const PatternConfig cfg = PatternConfig::laser_tracheotomy();
  const hybrid::Automaton sound = make_supervisor(cfg, ApprovalSpec{}, true, true);
  const hybrid::Automaton impatient = make_supervisor(cfg, ApprovalSpec{}, true, false);
  EXPECT_NE(hybrid::canonical_text(sound), hybrid::canonical_text(impatient));
}

}  // namespace
}  // namespace ptecps::core
