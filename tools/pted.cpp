// `pted` — the verification service as a long-running daemon: a bounded
// worker pool over the job API behind one TCP port speaking both the
// framed "PTEJ" protocol and an HTTP/1.1 shim (service/server.hpp).
//
//   pted --port 7411 --workers 4 --cache-dir /var/cache/pte
//
// Operations surface:
//   GET /healthz    "ok" while serving, 503 "draining" during shutdown
//   GET /metrics    jobs/s, p50/p95 latency, queue depth, cache hit rate
//   SIGTERM/SIGINT  graceful drain: stop accepting, reject queued-out
//                   jobs, finish everything in flight, flush the cache,
//                   exit 0
//
// --port 0 binds an ephemeral port; --port-file FILE writes the bound
// port (atomically, as one "PORT\n" line) so a harness can start pted,
// poll for the file, and connect — the bench and the CI smoke both do.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include <unistd.h>

#include "service/server.hpp"
#include "util/cli.hpp"
#include "util/text.hpp"

using namespace ptecps;

namespace {

constexpr const char* kUsage =
    "usage: pted [options]\n"
    "\n"
    "  --host H             bind address (default 127.0.0.1)\n"
    "  --port P             TCP port; 0 binds an ephemeral port (default 0)\n"
    "  --port-file FILE     write the bound port to FILE once listening\n"
    "  --workers N          job worker threads (default: hardware concurrency)\n"
    "  --queue-depth N      admission queue capacity (default 64); jobs\n"
    "                       beyond it are rejected, not queued\n"
    "  --max-connections N  concurrent connections (default 256)\n"
    "  --max-states-cap N   cap any job's verify state budget (default: none)\n"
    "  --cache-dir DIR      shared result cache (or PTE_CACHE_DIR)\n"
    "  --no-cache           ignore PTE_CACHE_DIR, run cache-less\n"
    "  --cache-max-bytes N  cache size cap for gc\n"
    "  --gc-interval S      background cache gc period in seconds\n"
    "                       (default 300 when a cache is configured)\n"
    "\n"
    "SIGTERM or SIGINT drains gracefully and exits 0.\n";

// Self-pipe for the signal handler: the only async-signal-safe way to
// get from SIGTERM to a clean drain on the main thread.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_terminate(int) {
  const char byte = 't';
  // Best-effort; a full pipe already means a wakeup is pending.
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

bool write_port_file(const std::string& path, int port) {
  const std::string tmp = util::cat(path, ".tmp");
  {
    std::ofstream out(tmp);
    if (!out) return false;
    out << port << "\n";
    if (!out.flush()) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::ArgParser args(argc, argv,
                             {"host", "port", "port-file", "workers", "queue-depth",
                              "max-connections", "max-states-cap", "cache-dir",
                              "no-cache", "cache-max-bytes", "gc-interval", "help"});
  if (args.has_flag("help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (!args.positional().empty()) {
    std::fprintf(stderr, "error: pted takes no positional arguments\n\n%s", kUsage);
    return 2;
  }

  service::ServerOptions options;
  options.host = args.get_string("host", options.host);
  options.port = args.get_int("port", options.port);
  options.workers = args.get_u64("workers", options.workers);
  options.queue_depth = args.get_u64("queue-depth", options.queue_depth);
  options.max_connections = args.get_u64("max-connections", options.max_connections);
  options.max_states_cap = args.get_u64("max-states-cap", options.max_states_cap);
  if (!args.has_flag("no-cache")) {
    std::string dir = args.get_string("cache-dir", "");
    if (dir.empty()) {
      if (const char* env = std::getenv("PTE_CACHE_DIR")) dir = env;
    }
    options.service.cache_dir = std::move(dir);
    options.service.cache_max_bytes =
        args.get_u64("cache-max-bytes", options.service.cache_max_bytes);
  }
  const bool cached = !options.service.cache_dir.empty();
  options.gc_interval_s = args.get_double("gc-interval", cached ? 300.0 : 0.0);

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "error: pipe(): %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa = {};
  sa.sa_handler = on_terminate;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  try {
    service::Server server(options);
    server.start();
    std::fprintf(stderr, "pted: listening on %s:%d (%s workers, queue %zu%s)\n",
                 options.host.c_str(), server.port(),
                 options.workers == 0 ? "auto" : util::cat(options.workers).c_str(),
                 options.queue_depth,
                 cached ? util::cat(", cache ", options.service.cache_dir).c_str() : "");
    const std::string port_file = args.get_string("port-file", "");
    if (!port_file.empty() && !write_port_file(port_file, server.port())) {
      std::fprintf(stderr, "error: cannot write port file '%s'\n", port_file.c_str());
      return 1;
    }

    // Block until SIGTERM/SIGINT (EINTR from the signal itself retries).
    char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }
    std::fprintf(stderr, "pted: draining (finishing in-flight jobs)\n");
    server.drain();
    std::fputs(server.metrics_json().dump(2).c_str(), stderr);
    std::fputc('\n', stderr);
    std::fprintf(stderr, "pted: drained cleanly\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
