// `pte` — the one CLI of the repo: the paper's whole workflow (pick a
// deployment, prove its PTE rules under the bounded adversary, sample it
// under realistic loss) as subcommands over the job API, speaking
// scenario FILES and registry NAMES interchangeably.
//
//   pte list                 named scenarios (--json, --names)
//   pte describe <ref>       one scenario, human-readable (--json)
//   pte export <name>…       registry entry → scenario .json (--all, --dir D)
//   pte run <ref>            execute as declared (or --mode) → JobResult JSON
//   pte verify <ref>         exhaustive proof only → JobResult JSON
//   pte matrix               every scenario × both modes + cross-validation
//   pte replay <ref>         prove, then replay the counterexample end to end
//   pte fuzz                 coverage-guided scenario-space fuzzing
//
// <ref> is a registry name ("laser-tracheotomy") or a path to a scenario
// file ("deploy/icu.json") — `pte export` writes files that `pte verify`
// and `pte run` rebuild into the identical deployment.  Machine output
// (JobResult / MatrixResult JSON) goes to stdout; narration to stderr —
// `pte run laser-tracheotomy | python3 -m json.tool` round-trips.
//
// Exit codes: 0 = job ok (verdict matches any declared expectation,
// cross-validation consistent), 1 = job concluded against expectation or
// inconsistently, 2 = usage / input error.
//
// This multitool subsumed the bench_matrix, verify_demo and
// scenario_tour binaries, whose wiring it had triplicated.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "api/frontier.hpp"
#include "api/service.hpp"
#include "fuzz/fuzzer.hpp"
#include "scenarios/crossval.hpp"
#include "scenarios/registry.hpp"
#include "scenarios/serialize.hpp"
#include "util/cli.hpp"
#include "util/sockio.hpp"
#include "util/table.hpp"
#include "util/text.hpp"

using namespace ptecps;

namespace {

constexpr const char* kUsage =
    "usage: pte <command> [options]\n"
    "\n"
    "commands:\n"
    "  list                list the named scenarios (--json | --names)\n"
    "  describe <ref>      show one scenario (--json for the document)\n"
    "  export <name>...    write registry entries as scenario files\n"
    "                      (--all; --dir DIR, else stdout)\n"
    "  run <ref>           execute as declared or per --mode; JobResult JSON\n"
    "  verify <ref>        exhaustive proof; JobResult JSON on stdout\n"
    "  matrix              registry (or --dir of files) x both modes +\n"
    "                      cross-validation (--smoke, --json)\n"
    "  replay <ref>        prove and replay the counterexample\n"
    "  frontier [<ref>...] robustness frontier: binary-search the attacker\n"
    "                      intensity each scenario provably tolerates\n"
    "                      (whole registry when no refs; --budget K --smoke\n"
    "                      --json)\n"
    "  fuzz                coverage-guided scenario-space fuzzing: hunt\n"
    "                      prover/sampler disagreement over generated and\n"
    "                      mutated deployments (--max-execs N --batch N\n"
    "                      --seed S --time-budget SECS --corpus-dir DIR\n"
    "                      --artifact-dir DIR --max-remotes N\n"
    "                      --config-pool N --blind --no-minimize --json)\n"
    "  cache <action>      result-cache maintenance: stats, clear, gc\n"
    "\n"
    "<ref>: a registry name (`pte list`), a scenario .json file path, or\n"
    "  `-` for a scenario document on stdin (pipe from `pte export`).\n"
    "common options: --seeds N --seed-base S --threads N --verify-threads N\n"
    "  (prover threads; scenarios default to 0 = hardware concurrency)\n"
    "  --losses K --injections K --states N (budget caps) --smoke --expect V\n"
    "caching (run/verify/matrix/frontier/fuzz): --cache-dir DIR (or PTE_CACHE_DIR)\n"
    "  enables the content-addressed result cache + warm-resume checkpoints;\n"
    "  --no-cache disables it for one invocation.\n"
    "remote (run/verify): --connect HOST:PORT sends the job to a running\n"
    "  `pted` daemon instead of executing in-process.\n";

int usage_error(const std::string& message) {
  std::fprintf(stderr, "error: %s\n\n%s", message.c_str(), kUsage);
  return 2;
}

/// A ref is a file when it points into the filesystem; otherwise it is a
/// registry name.  (".json" also routes to the filesystem so a missing
/// file errors as a file problem, not as an unknown registry name.)
bool looks_like_file(const std::string& ref) {
  return ref.find('/') != std::string::npos || ref.ends_with(".json") ||
         std::filesystem::exists(ref);
}

scenarios::ScenarioDocument load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open scenario file '%s'\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return scenarios::document_from_text(buffer.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), e.what());
    std::exit(2);
  }
}

/// Registry entry by name; exits(2) with the `pte list` hint otherwise —
/// the ONE name lookup behind run/verify/describe/export/replay/matrix
/// (each used to print its own variant of this diagnostic).
const scenarios::RegistryEntry& find_entry_or_die(const std::string& name) {
  if (const scenarios::RegistryEntry* entry = scenarios::find_scenario(name))
    return *entry;
  std::fprintf(stderr, "error: no scenario named '%s' and no such file (try `pte list`)\n",
               name.c_str());
  std::exit(2);
}

/// Scenario document from stdin — `pte export X | pte verify -`.
scenarios::ScenarioDocument load_stdin() {
  std::ostringstream buffer;
  buffer << std::cin.rdbuf();
  try {
    return scenarios::document_from_text(buffer.str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: <stdin>: %s\n", e.what());
    std::exit(2);
  }
}

/// Registry name, scenario file, or `-` (stdin) → document; exits(2)
/// on none of the three.
scenarios::ScenarioDocument load_ref(const std::string& ref) {
  if (ref == "-") return load_stdin();
  if (!looks_like_file(ref)) return scenarios::export_document(find_entry_or_die(ref));
  return load_file(ref);
}

/// Create DIR (recursively) for --dir / --cache-dir; prints a path
/// diagnostic and returns false when it cannot be a directory (exists
/// as a file, permission denied, ...).
bool ensure_directory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (!ec && std::filesystem::is_directory(dir)) return true;
  std::fprintf(stderr, "error: cannot create directory '%s': %s\n", dir.c_str(),
               ec ? ec.message().c_str() : "exists but is not a directory");
  return false;
}

/// Cache wiring shared by run/verify/matrix: --cache-dir DIR beats the
/// PTE_CACHE_DIR environment variable; neither set (or --no-cache) means
/// caching stays off.  Exits(2) when the directory cannot be created.
api::ServiceOptions service_options_from_args(const util::ArgParser& args) {
  api::ServiceOptions options;
  if (args.has_flag("no-cache")) return options;
  std::string dir = args.get_string("cache-dir", "");
  if (dir.empty()) {
    if (const char* env = std::getenv("PTE_CACHE_DIR")) dir = env;
  }
  if (dir.empty()) return options;
  if (!ensure_directory(dir)) std::exit(2);
  options.cache_dir = std::move(dir);
  return options;
}

api::Service make_service(const util::ArgParser& args) {
  try {
    return api::Service(service_options_from_args(args));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::exit(2);
  }
}

/// The budget/seed flags shared by run/verify/matrix/replay.
scenarios::RegistryTuning tuning_from_args(const util::ArgParser& args) {
  scenarios::RegistryTuning tuning;
  tuning.seed_count = args.get_u64("seeds", 0);
  tuning.max_states = args.get_u64("states", 0);
  tuning.max_losses = args.get_u64("losses", 0);
  tuning.max_injections = args.get_u64("injections", 0);
  tuning.max_input_changes = args.get_u64("input-changes", 0);
  tuning.threads = args.get_u64("verify-threads", 0);
  return tuning;
}

api::Job job_from_args(const util::ArgParser& args, scenarios::ScenarioDocument doc) {
  api::Job job = api::Job::for_document(std::move(doc));
  job.smoke = args.has_flag("smoke");
  job.tuning = tuning_from_args(args);
  job.threads = args.get_u64("threads", 0);
  if (args.has_flag("seed-base")) job.seed_base = args.get_u64("seed-base", 1);
  const std::string expect = args.get_string("expect", "");
  if (!expect.empty()) {
    job.expected = scenarios::verify_status_from_str(expect);
    if (!job.expected.has_value())
      std::exit(usage_error(util::cat("unknown --expect verdict '", expect,
                                      "' (proved, violation, out-of-budget)")));
  }
  return job;
}

/// Execute one job on a running `pted` daemon (--connect HOST:PORT):
/// framed protocol, one request, one response.  Exits(2) on transport
/// or protocol failure; a job the daemon rejected (queue full, drain)
/// surfaces the server's error text and exits 1.
api::JobResult run_remote(const std::string& endpoint, const api::Job& job) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 == endpoint.size()) {
    std::fprintf(stderr, "error: --connect needs HOST:PORT, got '%s'\n", endpoint.c_str());
    std::exit(2);
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  try {
    util::Socket sock = util::tcp_connect(host, port);
    util::write_frame_magic(sock);
    util::Json envelope = util::Json::object();
    envelope.set("job", job.to_json());
    util::write_frame(sock, envelope.dump_canonical());
    const std::optional<std::string> reply = util::read_frame(sock);
    if (!reply.has_value())
      throw util::SockError("server closed the connection without a response");
    const util::Json resp = util::Json::parse(*reply);
    if (const util::Json* result = resp.find("result"))
      return api::JobResult::from_json(*result);
    const util::Json* error = resp.find("error");
    std::fprintf(stderr, "error: %s: %s\n", endpoint.c_str(),
                 error != nullptr ? error->as_string().c_str() : "malformed response");
    std::exit(1);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s: %s\n", endpoint.c_str(), e.what());
    std::exit(2);
  }
}

/// In-process service, or the daemon when --connect is given.
api::JobResult execute_job(const util::ArgParser& args, const api::Job& job) {
  const std::string endpoint = args.get_string("connect", "");
  if (!endpoint.empty()) return run_remote(endpoint, job);
  return make_service(args).run(job);
}

/// JSON to stdout, one verdict line to stderr, exit code from `ok`.
int emit_result(const api::JobResult& result) {
  std::fputs(result.to_json().dump(2).c_str(), stdout);
  std::fprintf(stderr, "%s: %s%s\n", result.scenario.c_str(), result.verdict.c_str(),
               result.ok ? ""
               : result.expected.has_value() && !result.expected_match
                   ? util::cat(" (expected ",
                               verify::verify_status_str(*result.expected), ")")
                         .c_str()
                   : " (FAILED)");
  for (const std::string& e : result.errors)
    std::fprintf(stderr, "error: %s\n", e.c_str());
  return result.ok ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

int cmd_list(const util::ArgParser& args) {
  if (args.has_flag("names")) {
    for (const auto& e : scenarios::registry()) std::printf("%s\n", e.name.c_str());
    return 0;
  }
  if (args.has_flag("json")) {
    util::Json out = util::Json::array();
    for (const auto& e : scenarios::registry()) {
      util::Json one = util::Json::object();
      one.set("name", e.name);
      one.set("summary", e.summary);
      one.set("expected", verify::verify_status_str(e.expected));
      out.push_back(std::move(one));
    }
    std::fputs(out.dump(2).c_str(), stdout);
    return 0;
  }
  std::printf("%zu named scenarios:\n", scenarios::registry().size());
  for (const auto& e : scenarios::registry())
    std::printf("  %-28s expect %-10s %s\n", e.name.c_str(),
                verify::verify_status_str(e.expected).c_str(), e.summary.c_str());
  return 0;
}

int cmd_describe(const util::ArgParser& args) {
  if (args.positional().size() != 1)
    return usage_error("describe needs exactly one <ref>");
  const scenarios::ScenarioDocument doc = load_ref(args.positional()[0]);
  if (args.has_flag("json")) {
    std::fputs(scenarios::to_json(doc).dump(2).c_str(), stdout);
    return 0;
  }
  const scenarios::ScenarioParams& p = doc.params;
  std::printf("=== %s ===\n", p.name.c_str());
  if (!doc.summary.empty()) std::printf("%s\n", doc.summary.c_str());
  for (const std::string& note : doc.notes) std::printf("  %s\n", note.c_str());
  if (doc.expected.has_value())
    std::printf("expected prover verdict: %s\n",
                verify::verify_status_str(*doc.expected).c_str());
  std::printf("\nmode: %s   horizon: %s s   seeds: %llu + %zu\n",
              scenarios::run_mode_str(p.mode).c_str(),
              util::fmt_compact(p.horizon).c_str(),
              static_cast<unsigned long long>(p.seed_base), p.seed_count);
  std::printf("topology: %s   attacker: %s\n",
              p.topology == scenarios::Topology::kStar ? "star" : "chained-bridge",
              p.attacker.describe().c_str());
  std::printf("verify budgets: %zu losses, %zu injections, %zu input changes, "
              "%zu states\n",
              p.verify.max_losses, p.verify.max_injections, p.verify.max_input_changes,
              p.verify.max_states);
  std::printf("script: period %s s, phase %s s, on for %s s, %zu explicit action(s)\n\n",
              util::fmt_compact(p.script.period).c_str(),
              util::fmt_compact(p.script.phase).c_str(),
              util::fmt_compact(p.script.on_for).c_str(), p.script.actions.size());
  std::printf("%s", p.config.describe().c_str());
  return 0;
}

int cmd_export(const util::ArgParser& args) {
  std::vector<const scenarios::RegistryEntry*> entries;
  if (args.has_flag("all")) {
    for (const auto& e : scenarios::registry()) entries.push_back(&e);
  } else {
    if (args.positional().empty())
      return usage_error("export needs scenario name(s) or --all");
    for (const std::string& name : args.positional())
      entries.push_back(&find_entry_or_die(name));
  }
  const std::string dir = args.get_string("dir", "");
  if (dir.empty() && entries.size() > 1)
    return usage_error("exporting several scenarios needs --dir DIR");
  if (!dir.empty() && !ensure_directory(dir)) return 2;
  for (const auto* entry : entries) {
    const std::string text = scenarios::to_json(scenarios::export_document(*entry)).dump(2);
    if (dir.empty()) {
      std::fputs(text.c_str(), stdout);
      continue;
    }
    const std::string path = util::cat(dir, "/", entry->name, ".json");
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
      return 2;
    }
    out << text;
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  }
  return 0;
}

int cmd_run(const util::ArgParser& args) {
  if (args.positional().size() != 1) return usage_error("run needs exactly one <ref>");
  api::Job job = job_from_args(args, load_ref(args.positional()[0]));
  const std::string mode = args.get_string("mode", "");
  if (!mode.empty()) {
    job.mode = scenarios::run_mode_from_str(mode);
    if (!job.mode.has_value())
      return usage_error(
          util::cat("unknown --mode '", mode, "' (monte-carlo, verify, both)"));
  }
  if (args.has_flag("no-crossval")) job.cross_validate = false;
  return emit_result(execute_job(args, job));
}

int cmd_verify(const util::ArgParser& args) {
  if (args.positional().size() != 1)
    return usage_error("verify needs exactly one <ref>");
  api::Job job = job_from_args(args, load_ref(args.positional()[0]));
  job.mode = campaign::RunMode::kVerify;
  return emit_result(execute_job(args, job));
}

int cmd_matrix(const util::ArgParser& args) {
  std::vector<api::Job> jobs;
  std::vector<std::string> labels;
  const std::string dir = args.get_string("dir", "");
  const std::string only = args.get_string("scenario", "");
  if (!dir.empty()) {
    // A directory of scenario files — `pte export --all --dir D` output.
    // Entries that shadow a registry name must agree with the compiled
    // expectation: a stale export silently flipping a verdict is exactly
    // the drift the matrix exists to catch.
    std::vector<std::string> paths;
    for (const auto& entry : std::filesystem::directory_iterator(dir))
      if (entry.path().extension() == ".json") paths.push_back(entry.path().string());
    std::sort(paths.begin(), paths.end());
    if (paths.empty()) return usage_error(util::cat("no .json files under '", dir, "'"));
    for (const std::string& path : paths) {
      scenarios::ScenarioDocument doc = load_file(path);
      if (const scenarios::RegistryEntry* compiled =
              scenarios::find_scenario(doc.params.name)) {
        if (!doc.expected.has_value() || *doc.expected != compiled->expected) {
          std::fprintf(stderr,
                       "error: %s: expected verdict diverges from the compiled "
                       "registry entry '%s' — re-export it\n",
                       path.c_str(), doc.params.name.c_str());
          return 2;
        }
      }
      labels.push_back(path);
      jobs.push_back(api::Job::for_document(std::move(doc)));
    }
  } else if (!only.empty()) {
    const scenarios::RegistryEntry& entry = find_entry_or_die(only);
    labels.push_back(entry.name);
    jobs.push_back(api::Job::for_scenario(entry.name));
  } else {
    for (const auto& e : scenarios::registry()) {
      labels.push_back(e.name);
      jobs.push_back(api::Job::for_scenario(e.name));
    }
  }
  for (api::Job& job : jobs) {
    job.smoke = args.has_flag("smoke");
    job.tuning = tuning_from_args(args);
    job.threads = args.get_u64("threads", 0);
  }

  const api::MatrixResult result = make_service(args).run_matrix(jobs);
  if (args.has_flag("json")) {
    std::fputs(result.to_json().dump(2).c_str(), stdout);
    for (const std::string& e : result.errors)
      std::fprintf(stderr, "error: %s\n", e.c_str());
    return result.ok ? 0 : 1;
  }

  util::TextTable table(
      {"scenario", "runs", "sampled viol", "verify", "states", "verify s", "replay",
       "expected", "agree"});
  for (std::size_t c = 1; c <= 6; ++c) table.set_right_align(c);
  for (std::size_t i = 0; i < result.rows.size(); ++i) {
    const api::MatrixRow& row = result.rows[i];
    const campaign::ScenarioOutcome& outcome = result.report->scenarios[i];
    if (!outcome.verification.has_value()) {
      table.add_row({row.scenario, util::cat(outcome.runs.size()),
                     util::cat(outcome.total_violations), "-", "-", "-", "-",
                     row.expected.has_value() ? verify::verify_status_str(*row.expected)
                                              : "-",
                     row.expected_match ? "yes" : "NO"});
      continue;
    }
    const campaign::VerificationOutcome& v = *outcome.verification;
    table.add_row(
        {row.scenario, util::cat(outcome.runs.size()), util::cat(outcome.total_violations),
         verify::verify_status_str(v.status), util::cat(v.states_explored),
         util::fmt_double(v.wall_seconds, 2),
         v.replay_attempted ? (v.replay_reproduced ? "yes" : "NO") : "-",
         row.expected.has_value() ? verify::verify_status_str(*row.expected) : "-",
         row.consistent && row.expected_match ? "yes" : "NO"});
  }
  std::printf("=== scenario matrix: %zu scenario(s), Monte-Carlo + exhaustive proof ===\n\n",
              jobs.size());
  std::printf("%s\n", table.render().c_str());
  if (result.crossval.has_value()) std::printf("%s\n", result.crossval->summary().c_str());
  if (result.report.has_value()) std::printf("%s\n", result.report->summary().c_str());
  for (const std::string& e : result.errors) std::fprintf(stderr, "error: %s\n", e.c_str());
  if (result.report.has_value())
    for (const std::string& e : result.report->errors)
      std::fprintf(stderr, "error: %s\n", e.c_str());
  std::printf("\nSCENARIO MATRIX %s\n", result.ok ? "PASSED" : "FAILED");
  return result.ok ? 0 : 1;
}

int cmd_replay(const util::ArgParser& args) {
  if (args.positional().size() != 1)
    return usage_error("replay needs exactly one <ref>");
  api::Job job = job_from_args(args, load_ref(args.positional()[0]));
  job.mode = campaign::RunMode::kVerify;
  job.expected.reset();  // we judge on the replay, not on a declared verdict
  const api::JobResult result = api::Service().run(job);
  for (const std::string& e : result.errors) std::fprintf(stderr, "error: %s\n", e.c_str());
  if (!result.report.has_value()) return 1;
  const auto& verification = result.report->scenarios[0].verification;
  if (!verification.has_value() || !verification->counterexample.has_value()) {
    std::printf("%s: %s — no counterexample to replay\n", result.scenario.c_str(),
                result.verdict.c_str());
    return 1;
  }
  std::printf("%s\n", verification->counterexample->str().c_str());
  std::printf("replayed through hybrid::Engine + PteMonitor: %s\n",
              verification->replay_reproduced ? "violation reproduced" : "NOT reproduced");
  if (!verification->replay_detail.empty())
    std::printf("%s\n", verification->replay_detail.c_str());
  return verification->replay_reproduced ? 0 : 1;
}

int cmd_fuzz(const util::ArgParser& args) {
  fuzz::FuzzOptions options;
  options.seed = args.get_u64("seed", 1);
  options.max_execs = args.get_u64("max-execs", 256);
  options.time_budget_s = args.get_double("time-budget", 0.0);
  options.batch = args.get_u64("batch", 16);
  options.guided = !args.has_flag("blind");
  options.corpus_dir = args.get_string("corpus-dir", "");
  options.artifact_dir = args.get_string("artifact-dir", "");
  options.minimize = !args.has_flag("no-minimize");
  options.threads = args.get_u64("threads", 0);
  options.grammar.max_remotes = args.get_u64("max-remotes", options.grammar.max_remotes);
  options.grammar.config_pool = args.get_u64("config-pool", options.grammar.config_pool);
  if (options.max_execs == 0) return usage_error("--max-execs must be positive");
  if (options.batch == 0) return usage_error("--batch must be positive");
  if (options.grammar.max_remotes < 2)
    return usage_error("--max-remotes must be >= 2 (the PTE pattern is pairwise)");
  if (options.grammar.config_pool == 0)
    return usage_error("--config-pool must be positive");
  if (!options.corpus_dir.empty() && !ensure_directory(options.corpus_dir)) return 2;
  if (!options.artifact_dir.empty() && !ensure_directory(options.artifact_dir)) return 2;

  // Through the service, not the raw CampaignRunner: every execution
  // gets the result cache, content dedup, and JobResult semantics —
  // the same path `pte run` and the daemon use.
  const fuzz::FuzzReport report = fuzz::Fuzzer(make_service(args), options).run();

  if (args.has_flag("json")) {
    std::fputs(report.to_json().dump(2).c_str(), stdout);
  } else {
    const fuzz::FuzzStats& s = report.stats;
    std::printf("=== scenario-space fuzzing: %zu execution(s), %s mode, seed %llu ===\n",
                s.execs, options.guided ? "guided" : "blind",
                static_cast<unsigned long long>(options.seed));
    std::printf("coverage: %llu fingerprint bits, %zu distinct sketches, "
                "%zu verdict-flip region(s), %zu near-miss(es)\n",
                static_cast<unsigned long long>(s.coverage_bits), s.distinct_sketches,
                s.flip_regions, s.near_misses);
    std::printf("verdicts: %zu proved, %zu violated, %zu out-of-budget, %zu error(s)\n",
                s.proved, s.violated, s.out_of_budget, s.row_errors);
    std::printf("corpus: %zu entr(ies), %zu dedup-skipped candidate(s)",
                s.corpus_size, s.dedup_skipped);
    if (s.matrix_deduped > 0) std::printf(", %zu matrix-deduped", s.matrix_deduped);
    std::printf("\n");
    if (s.cache.enabled)
      std::printf("cache: %zu hit(s), %zu miss(es), %zu resume(s)\n", s.cache.hits,
                  s.cache.misses, s.cache.resumes);
    std::printf("wall: %.2f s (%.1f exec/s)\n", s.wall_s, s.execs_per_s);
  }
  for (const std::string& e : report.errors) std::fprintf(stderr, "error: %s\n", e.c_str());
  for (const fuzz::FuzzFinding& f : report.findings) {
    std::fprintf(stderr, "finding [%s] %s: %s (%zu-line reproducer%s)\n",
                 f.kind == fuzz::FuzzFinding::Kind::kDisagreement ? "disagreement"
                                                                  : "error",
                 f.digest.substr(0, 16).c_str(), f.description.c_str(), f.doc_lines,
                 f.minimized ? ", minimized" : "");
    if (!options.artifact_dir.empty())
      std::fprintf(stderr, "reproduce: pte matrix --dir %s  (or pte run %s/%s.json)\n",
                   options.artifact_dir.c_str(), options.artifact_dir.c_str(),
                   f.digest.substr(0, 16).c_str());
  }
  if (!report.findings.empty()) {
    // Environment-complete reproduction line: every knob that shaped the
    // candidate stream, spelled with its actual (u64-safe) values.
    std::fprintf(stderr,
                 "reproduce campaign: pte fuzz --seed %llu --max-execs %llu "
                 "--batch %llu --max-remotes %llu --config-pool %llu "
                 "--threads %llu%s%s%s%s\n",
                 static_cast<unsigned long long>(options.seed),
                 static_cast<unsigned long long>(options.max_execs),
                 static_cast<unsigned long long>(options.batch),
                 static_cast<unsigned long long>(options.grammar.max_remotes),
                 static_cast<unsigned long long>(options.grammar.config_pool),
                 static_cast<unsigned long long>(options.threads),
                 options.guided ? "" : " --blind",
                 options.minimize ? "" : " --no-minimize",
                 options.corpus_dir.empty()
                     ? ""
                     : util::cat(" --corpus-dir ", options.corpus_dir).c_str(),
                 options.artifact_dir.empty()
                     ? ""
                     : util::cat(" --artifact-dir ", options.artifact_dir).c_str());
  }
  if (!args.has_flag("json"))
    std::printf("\nFUZZ %s (%zu finding(s))\n", report.ok() ? "PASSED" : "FAILED",
                report.findings.size());
  return report.ok() ? 0 : 1;
}

int cmd_frontier(const util::ArgParser& args) {
  std::vector<api::Job> jobs;
  if (args.positional().empty()) {
    for (const auto& e : scenarios::registry())
      jobs.push_back(api::Job::for_scenario(e.name));
  } else {
    for (const std::string& ref : args.positional())
      jobs.push_back(api::Job::for_document(load_ref(ref)));
  }
  for (api::Job& job : jobs) {
    job.smoke = args.has_flag("smoke");
    job.tuning = tuning_from_args(args);
    job.threads = args.get_u64("threads", 0);
  }
  api::FrontierOptions options;
  options.default_budget = args.get_u64("budget", options.default_budget);
  if (options.default_budget == 0) return usage_error("--budget must be positive");

  const api::FrontierReport report =
      api::compute_frontier(make_service(args), jobs, options);
  if (args.has_flag("json")) {
    std::fputs(report.to_json().dump(2).c_str(), stdout);
    for (const api::FrontierResult& r : report.results)
      for (const std::string& e : r.errors)
        std::fprintf(stderr, "error: %s: %s\n", r.scenario.c_str(), e.c_str());
    for (const std::string& e : report.errors)
      std::fprintf(stderr, "error: %s\n", e.c_str());
    return report.ok ? 0 : 1;
  }

  util::TextTable table(
      {"scenario", "budget", "safe", "critical", "margin", "replay", "probes"});
  for (std::size_t c = 1; c <= 4; ++c) table.set_right_align(c);
  for (const api::FrontierResult& r : report.results) {
    std::string probes;
    for (const api::FrontierProbe& p : r.probes) {
      if (!probes.empty()) probes += " ";
      probes += util::cat(p.losses, ":",
                          p.status == verify::VerifyStatus::kProved ? "proved"
                          : p.status == verify::VerifyStatus::kViolation
                              ? "violated"
                              : "out-of-budget");
    }
    table.add_row(
        {r.scenario, util::cat(r.budget),
         r.safe_losses.has_value() ? util::cat(*r.safe_losses) : "-",
         r.critical_losses.has_value() ? util::cat(*r.critical_losses) : "-",
         r.ok ? util::fmt_double(r.margin, 2) : "ERROR",
         r.critical_losses.has_value() ? (r.counterexample_replayed ? "yes" : "NO") : "-",
         probes});
  }
  std::printf("=== robustness frontier: %zu scenario(s), attacker-intensity "
              "binary search ===\n\n%s\n",
              jobs.size(), table.render().c_str());
  std::printf("safe/critical are attacker losses; margin = safe/budget — the\n"
              "proof holds at every intensity <= margin, and the critical probe's\n"
              "counterexample replays through the engine above it.\n");
  for (const api::FrontierResult& r : report.results)
    for (const std::string& e : r.errors)
      std::fprintf(stderr, "error: %s: %s\n", r.scenario.c_str(), e.c_str());
  for (const std::string& e : report.errors) std::fprintf(stderr, "error: %s\n", e.c_str());
  if (report.cache.enabled)
    std::printf("\ncache: %zu hit(s), %zu miss(es), %zu resume(s)\n",
                report.cache.hits, report.cache.misses, report.cache.resumes);
  std::printf("\nFRONTIER %s\n", report.ok ? "PASSED" : "FAILED");
  return report.ok ? 0 : 1;
}

int cmd_cache(const util::ArgParser& args) {
  if (args.positional().size() != 1)
    return usage_error("cache needs exactly one action: stats, clear, or gc");
  const std::string action = args.positional()[0];
  std::string dir = args.get_string("cache-dir", "");
  if (dir.empty()) {
    if (const char* env = std::getenv("PTE_CACHE_DIR")) dir = env;
  }
  if (dir.empty())
    return usage_error("cache needs --cache-dir DIR (or PTE_CACHE_DIR set)");
  if (!ensure_directory(dir)) return 2;

  api::ResultCache::Options options;
  options.dir = dir;
  options.max_bytes =
      args.get_u64("max-bytes", api::ResultCache::kDefaultMaxBytes);
  try {
    const api::ResultCache cache(options);
    if (action == "stats") {
      const api::CacheStats stats = cache.stats();
      if (args.has_flag("json")) {
        std::fputs(stats.to_json().dump(2).c_str(), stdout);
        return 0;
      }
      std::printf("cache %s: %zu result(s), %zu checkpoint(s), %llu / %llu bytes\n",
                  stats.dir.c_str(), stats.results, stats.checkpoints,
                  static_cast<unsigned long long>(stats.bytes),
                  static_cast<unsigned long long>(stats.max_bytes));
      return 0;
    }
    if (action == "clear") {
      std::printf("removed %zu file(s) from %s\n", cache.clear(), cache.dir().c_str());
      return 0;
    }
    if (action == "gc") {
      std::printf("evicted %zu file(s) from %s\n", cache.gc(), cache.dir().c_str());
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage_error(util::cat("unknown cache action '", action,
                               "' (stats, clear, gc)"));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage_error("missing command");
  const std::string command = argv[1];
  // Each subcommand parses its own flags (argv[1] becomes the "program").
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  if (command == "list")
    return cmd_list({sub_argc, sub_argv, {"json", "names"}});
  if (command == "describe")
    return cmd_describe({sub_argc, sub_argv, {"json"}});
  if (command == "export")
    return cmd_export({sub_argc, sub_argv, {"all", "dir"}});
  if (command == "run")
    return cmd_run({sub_argc, sub_argv,
                    {"seeds", "seed-base", "threads", "verify-threads", "losses",
                     "injections", "input-changes", "states", "smoke", "mode", "expect",
                     "no-crossval", "cache-dir", "no-cache", "connect"}});
  if (command == "verify")
    return cmd_verify({sub_argc, sub_argv,
                       {"seeds", "seed-base", "threads", "verify-threads", "losses",
                        "injections", "input-changes", "states", "smoke", "expect",
                        "cache-dir", "no-cache", "connect"}});
  if (command == "matrix")
    return cmd_matrix({sub_argc, sub_argv,
                       {"smoke", "scenario", "dir", "seeds", "threads",
                        "verify-threads", "losses", "injections", "input-changes",
                        "states", "json", "cache-dir", "no-cache"}});
  if (command == "frontier")
    return cmd_frontier({sub_argc, sub_argv,
                         {"budget", "smoke", "seeds", "seed-base", "threads",
                          "verify-threads", "losses", "injections", "input-changes",
                          "states", "json", "cache-dir", "no-cache"}});
  if (command == "cache")
    return cmd_cache({sub_argc, sub_argv, {"cache-dir", "max-bytes", "json"}});
  if (command == "replay")
    return cmd_replay({sub_argc, sub_argv,
                       {"seeds", "seed-base", "threads", "verify-threads", "losses",
                        "injections", "input-changes", "states", "smoke"}});
  if (command == "fuzz")
    return cmd_fuzz({sub_argc, sub_argv,
                     {"seed", "max-execs", "time-budget", "batch", "blind",
                      "corpus-dir", "artifact-dir", "no-minimize", "max-remotes",
                      "config-pool", "threads", "json", "cache-dir", "no-cache"}});
  if (command == "--help" || command == "help") {
    std::fputs(kUsage, stdout);
    return 0;
  }
  return usage_error(util::cat("unknown command '", command, "'"));
}
