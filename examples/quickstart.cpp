// Quickstart: guarantee PTE safety for your own wireless CPS in five
// steps.
//
//   1. describe the application: how many remote entities, what safeguard
//      intervals the physics demands;
//   2. synthesize configuration time constants satisfying Theorem 1's
//      closed-form constraints c1–c7 (or bring your own and check them);
//   3. build the Supervisor / Initializer / Participant pattern automata
//      and the wireless routing table;
//   4. wire them to a (lossy!) star network and a PTE safety monitor;
//   5. run — and watch the leases keep the PTE rules intact no matter
//      what the network does.
//
// Run:  ./quickstart [--loss 0.5] [--duration 600]
#include <cstdio>
#include <memory>

#include "core/constraints.hpp"
#include "core/deployment.hpp"
#include "core/events.hpp"
#include "core/monitor.hpp"
#include "core/synthesis.hpp"
#include "net/bridge.hpp"
#include "net/star_network.hpp"
#include "util/cli.hpp"

using namespace ptecps;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv, {"duration", "loss"});
  const double loss = args.get_double("loss", 0.2);
  const double duration = args.get_double("duration", 600.0);

  // 1. The application: three remote entities forming the PTE chain
  //    xi1 < xi2 < xi3 (xi3 is the Initializer).  Entering each risky
  //    state needs 2 s of spacing below it; exiting needs 1 s.
  core::SynthesisRequest request;
  request.n_remotes = 3;
  request.t_risky_min = {2.0, 2.0};
  request.t_safe_min = {1.0, 1.0};
  request.initializer_lease = 12.0;  // xi3 may stay risky for 12 s per lease
  request.t_wait_max = 1.5;
  request.t_fb_min_0 = 4.0;

  // 2. Closed-form synthesis; the result provably satisfies c1–c7.
  const core::PatternConfig config = core::synthesize(request);
  std::printf("synthesized configuration:\n%s\n", config.describe().c_str());
  std::printf("Theorem 1 check: %s\n\n", core::check_theorem1(config).message().c_str());

  // 3. Pattern automata + routing table.
  core::BuiltSystem built = core::build_pattern_system(config);

  // 4. Engine + lossy star network + monitor.
  hybrid::Engine engine(std::move(built.automata));
  sim::Rng rng(2024);
  net::StarNetwork network(engine.scheduler(), rng, config.n_remotes);
  network.configure_all(
      [loss] { return std::make_unique<net::BernoulliLoss>(loss); },
      net::ChannelConfig{/*delay=*/0.005, /*jitter=*/0.01, /*bit_error=*/0.01,
                         /*acceptance_window=*/0.5});
  net::NetEventRouter router(network, built.automaton_of_entity);
  built.install_routes(router);
  engine.set_router(&router);
  router.attach(engine);

  core::PteMonitor monitor(core::MonitorParams::from_config(config));
  monitor.attach(engine, {0, 1, 2, 3});
  engine.init();

  // 5. Drive it: the initializer (xi3) requests every ~20 s.
  sim::Rng stim(7);
  double t = 0.0;
  while (t < duration) {
    t += stim.exponential(20.0);
    engine.scheduler().schedule_at(
        t, [&engine] { engine.inject(3, core::events::cmd_request(3)); });
  }
  engine.run_until(duration);
  monitor.finalize(duration);

  std::printf("after %.0f s at %.0f%% packet loss:\n", duration, loss * 100.0);
  std::printf("  wireless packets: %llu sent, %llu delivered, %llu lost, %llu corrupted\n",
              static_cast<unsigned long long>(network.total_stats().sent),
              static_cast<unsigned long long>(network.total_stats().delivered),
              static_cast<unsigned long long>(network.total_stats().lost),
              static_cast<unsigned long long>(network.total_stats().corrupted));
  for (std::size_t e = 1; e <= config.n_remotes; ++e)
    std::printf("  xi%zu: %zu risky episode(s), max dwell %.2f s (bound %.2f s)\n", e,
                monitor.episodes(e), monitor.max_dwell(e), config.risky_dwell_bound());
  std::printf("  PTE violations: %zu  %s\n", monitor.violations().size(),
              monitor.violations().empty() ? "— the leases held." : "(unexpected!)");
  return monitor.violations().empty() ? 0 : 1;
}
