// Tour of the scenario library: pick any named scenario from the
// registry, run it through BOTH execution modes — Monte-Carlo sampling
// and the exhaustive zone-reachability proof — and cross-validate the
// two verdicts against each other.
//
// This is the five-line version of what bench_matrix does for the whole
// registry, and the template for wiring your own deployment: write a
// ScenarioParams (see src/scenarios/builder.hpp), or add a RegistryEntry
// so every harness picks it up.
//
// Run:  ./scenario_tour [--scenario laser-tracheotomy] [--seeds 4] [--list]
#include <cstdio>

#include "campaign/runner.hpp"
#include "scenarios/crossval.hpp"
#include "scenarios/registry.hpp"
#include "util/cli.hpp"

using namespace ptecps;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);

  if (args.has_flag("list")) {
    for (const auto& e : scenarios::registry())
      std::printf("%-28s %s\n", e.name.c_str(), e.summary.c_str());
    return 0;
  }

  const std::string name = args.get_string("scenario", "laser-tracheotomy");
  const scenarios::RegistryEntry* entry = scenarios::find_scenario(name);
  if (!entry) {
    std::fprintf(stderr, "unknown scenario '%s' (try --list)\n", name.c_str());
    return 2;
  }

  scenarios::RegistryTuning tuning = scenarios::RegistryTuning::smoke();
  tuning.seed_count = args.get_u64("seeds", 4);
  const campaign::ScenarioSpec spec = scenarios::build_scenario(*entry, tuning);

  std::printf("=== %s ===\n%s\n\n", entry->name.c_str(), entry->summary.c_str());
  const campaign::CampaignReport report = campaign::CampaignRunner().run(spec);
  std::printf("%s\n\n", report.summary().c_str());

  const auto& outcome = report.scenarios[0];
  if (outcome.verification.has_value() && outcome.verification->counterexample.has_value())
    std::printf("counterexample:\n%s\n\n",
                outcome.verification->counterexample->str().c_str());

  const scenarios::CrossValidationReport crossval = scenarios::cross_validate(report);
  std::printf("cross-validation (prover vs sampler):\n%s", crossval.summary().c_str());

  const bool expected =
      !outcome.verification.has_value() || outcome.verification->status == entry->expected;
  return report.ok() && crossval.ok() && expected ? 0 : 1;
}
