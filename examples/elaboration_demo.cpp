// The elaboration methodology (§IV-C) as an API tour: independence
// (Def. 2), simplicity (Def. 3), atomic elaboration E(A, v, A′), the
// semantic guarantees (parent flow inside, child frozen outside), the
// projection back to the pattern, and the Theorem 2 compliance check —
// everything a designer needs to refine a design-pattern automaton into a
// concrete device without forfeiting the PTE safety proof.
//
// Run:  ./elaboration_demo [--dot]
#include <cstdio>

#include "casestudy/ventilator.hpp"
#include "core/compliance.hpp"
#include "core/config.hpp"
#include "core/events.hpp"
#include "core/pattern.hpp"
#include "hybrid/dot_export.hpp"
#include "hybrid/elaboration.hpp"
#include "hybrid/engine.hpp"
#include "hybrid/independence.hpp"
#include "util/cli.hpp"

using namespace ptecps;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv, {"dot"});
  const bool dot = args.has_flag("dot");
  const auto config = core::PatternConfig::laser_tracheotomy();

  // The two ingredients: the Participant pattern automaton and the
  // stand-alone ventilator of Fig. 2.
  const hybrid::Automaton pattern = core::make_participant(config, 1);
  const hybrid::Automaton vent = casestudy::make_standalone_ventilator();
  std::printf("=== ingredients ===\n");
  std::printf("pattern: %zu locations / %zu edges;  child: %zu locations / %zu edges\n\n",
              pattern.num_locations(), pattern.num_edges(), vent.num_locations(),
              vent.num_edges());

  // Preconditions of E(A, v, A'):
  std::printf("Definition 2 (independence):  %s\n",
              hybrid::check_independent(pattern, vent).message().c_str());
  std::printf("Definition 3 (simplicity):    %s\n\n",
              hybrid::check_simple(vent).message().c_str());

  // The elaboration itself.
  const hybrid::Elaboration design = hybrid::elaborate(pattern, "Fall-Back", vent);
  std::printf("=== E(A_ptcpnt,1, Fall-Back, A'_vent) ===\n%s\n",
              hybrid::to_text(design.automaton).c_str());
  if (dot) std::printf("--- DOT ---\n%s\n", hybrid::to_dot(design.automaton).c_str());

  // Semantics: run it and watch the pump freeze while leased.
  hybrid::Engine engine({design.automaton});
  engine.init();
  const hybrid::VarId h = engine.automaton(0).var_id("Hvent");
  engine.run_until(4.0);
  const double h_pumping = engine.var(0, h);
  engine.deliver(0, core::events::lease_req(1));  // lease arrives: leave the pump
  engine.run_until(10.0);                          // deep in Entering/Risky Core
  const double h_frozen = engine.var(0, h);
  std::printf("=== semantics check ===\n");
  std::printf("Hvent after 4 s of pumping:        %.3f m (moving)\n", h_pumping);
  std::printf("Hvent 6 s into the leased episode: %.3f m (frozen: pump halted)\n",
              h_frozen);
  std::printf("current location: %s (projects to pattern location '%s')\n\n",
              engine.current_location_name(0).c_str(),
              hybrid::project_location({design.info},
                                       engine.current_location_name(0)).c_str());

  // Theorem 2 compliance of the full case-study design.
  const hybrid::Automaton supervisor = core::make_supervisor(config);
  const hybrid::Automaton scalpel = core::make_initializer(config);
  core::ComplianceInput input;
  input.config = &config;
  input.designs = {&supervisor, &design.automaton, &scalpel};
  input.plans.resize(3);
  input.plans[1].at.emplace_back("Fall-Back", &vent);
  const hybrid::CheckResult result = core::check_theorem2(input);
  std::printf("=== Theorem 2 compliance of the whole design ===\n%s\n",
              result.ok ? "PASS — the elaborated system inherits the PTE guarantee"
                        : result.message().c_str());
  return result.ok ? 0 : 1;
}
