// A second application domain for the PTE pattern: an industrial
// hydraulic press cell (the kind of wireless factory control loop the
// paper's introduction motivates).
//
// Three wirelessly-linked remote entities around a base station:
//   xi1  conveyor   (Participant) — "risky" = halted for press access;
//                    elaborated at Fall-Back with a belt-motor automaton
//                    (the same trick as the paper's ventilator/Fig. 2)
//   xi2  clamp      (Participant) — "risky" = engaged on the workpiece
//   xi3  press      (Initializer) — "risky" = ram descending
//
// PTE order: the belt must halt before the clamp engages (workpiece would
// shift), and the clamp must engage a safeguard interval before the ram
// descends; release happens in exactly the reverse order.  Leases bound
// every risky dwelling, so a lost release command can never leave the
// clamp crushing a workpiece or the line halted indefinitely.
//
// Run:  ./factory_press [--loss 0.35] [--duration 900]
#include <cstdio>
#include <memory>

#include "core/constraints.hpp"
#include "core/deployment.hpp"
#include "core/events.hpp"
#include "core/monitor.hpp"
#include "core/synthesis.hpp"
#include "hybrid/elaboration.hpp"
#include "net/bridge.hpp"
#include "net/star_network.hpp"
#include "util/cli.hpp"

using namespace ptecps;

namespace {

/// Belt motor: a simple hybrid automaton (Def. 3) advancing the belt
/// position between pallet stops 0.8 m apart at 0.4 m/s, pausing 1 s at
/// each stop — the conveyor's stand-alone behavior while in Fall-Back.
hybrid::Automaton make_belt_motor() {
  using namespace hybrid;
  Automaton a("belt_motor");
  const VarId pos = a.add_var("belt_pos", 0.0);
  const LocId advance = a.add_location("Advance");
  const LocId dwell = a.add_location("AtStop");
  const Guard track{std::vector<LinearConstraint>{atleast(pos, 0.0), atmost(pos, 0.8)}};
  a.set_invariant(advance, track);
  a.set_invariant(dwell, track);
  a.set_flow(advance, Flow{}.rate(pos, 0.4));
  Edge stop;
  stop.src = advance;
  stop.dst = dwell;
  stop.kind = TriggerKind::kCondition;
  stop.guard = Guard{atleast(pos, 0.8)};
  stop.note = "pallet at stop";
  a.add_edge(std::move(stop));
  Edge go;
  go.src = dwell;
  go.dst = advance;
  go.kind = TriggerKind::kTimed;
  go.dwell = 1.0;
  go.reset.set(pos, 0.0);  // next pallet pitch
  a.add_edge(std::move(go));
  a.add_initial_location(advance);
  a.set_initial_data(InitialData::kAnyInInvariant);
  a.validate();
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv, {"duration", "loss"});
  const double loss = args.get_double("loss", 0.15);
  const double duration = args.get_double("duration", 900.0);

  // Physics-driven safeguards: the belt needs 1.5 s to settle before the
  // clamp may engage; the clamp needs 0.8 s of grip before the ram moves.
  core::SynthesisRequest request;
  request.n_remotes = 3;
  request.t_risky_min = {1.5, 0.8};
  request.t_safe_min = {0.5, 0.4};
  request.initializer_lease = 6.0;  // one press stroke worth of lease
  request.t_wait_max = 1.0;
  request.t_fb_min_0 = 3.0;
  const core::PatternConfig config = core::synthesize(request);
  std::printf("=== Factory press cell (PTE chain: belt < clamp < press) ===\n\n%s\n",
              config.describe().c_str());
  std::printf("Theorem 1: %s\n\n", core::check_theorem1(config).message().c_str());

  // Build the pattern and elaborate the conveyor with the belt motor —
  // the belt physically runs only while the conveyor entity is in
  // Fall-Back (elaboration freezes belt_pos elsewhere).
  core::BuiltSystem built = core::build_pattern_system(config);
  const hybrid::Automaton belt = make_belt_motor();
  built.automata[1] = hybrid::elaborate(built.automata[1], "Fall-Back", belt).automaton;

  hybrid::Engine engine(std::move(built.automata));
  sim::Rng rng(77);
  net::StarNetwork network(engine.scheduler(), rng, 3);
  network.configure_all([loss] { return std::make_unique<net::BernoulliLoss>(loss); },
                        net::ChannelConfig{0.002, 0.004, 0.002, 0.25});
  net::NetEventRouter router(network, built.automaton_of_entity);
  built.install_routes(router);
  engine.set_router(&router);
  router.attach(engine);

  core::PteMonitor monitor(core::MonitorParams::from_config(config));
  monitor.attach(engine, {0, 1, 2, 3});
  engine.init();

  // Production controller: the press requests a stroke every ~15 s and
  // occasionally aborts one midway.
  sim::Rng stim(13);
  double t = 0.0;
  std::size_t strokes_requested = 0;
  while (t < duration) {
    t += stim.exponential(15.0);
    ++strokes_requested;
    engine.scheduler().schedule_at(
        t, [&engine] { engine.inject(3, core::events::cmd_request(3)); });
    if (stim.bernoulli(0.2)) {
      const double cancel_at = t + stim.uniform(1.0, 8.0);
      engine.scheduler().schedule_at(cancel_at, [&engine] {
        engine.inject(3, core::events::cmd_cancel(3));
      });
    }
  }
  engine.run_until(duration);
  monitor.finalize(duration);

  std::printf("after %.0f s at %.0f%% loss (%zu stroke requests):\n", duration, loss * 100.0,
              strokes_requested);
  std::printf("  completed press strokes: %zu\n", monitor.episodes(3));
  std::printf("  clamp engagements:       %zu (max %.2f s)\n", monitor.episodes(2),
              monitor.max_dwell(2));
  std::printf("  belt halts:              %zu (max %.2f s)\n", monitor.episodes(1),
              monitor.max_dwell(1));
  std::printf("  belt position now:       %.3f m (%s)\n",
              engine.var(1, engine.automaton(1).var_id("belt_pos")),
              engine.current_location_name(1).c_str());
  std::printf("  PTE violations:          %zu %s\n", monitor.violations().size(),
              monitor.violations().empty() ? "— ordering and leases held under loss."
                                           : "(unexpected!)");
  return monitor.violations().empty() ? 0 : 1;
}
