// Verification demo: the campaign API's `verify` mode end to end.
//
//   1. Prove the §V laser-tracheotomy configuration: under EVERY bounded
//      adversary behavior (message loss/delay interleavings, surgeon
//      commands at arbitrary instants, SpO2 approval collapse) the PTE
//      safety rules and the Theorem 1 reset bound hold — the exhaustive
//      counterpart of the Monte-Carlo campaigns.
//   2. Break the system on purpose (judge it against a dwell ceiling of
//      30 s, below the ventilator's 41 s worst-case occupancy) and watch
//      the verifier hand back a concrete schedule — injection times,
//      which packet to lose, delivery instants — that replays to the
//      same violation through the real engine + monitor.
//
// Run:  ./verify_demo [--losses 2] [--injections 2]
#include <cstdio>

#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "util/cli.hpp"
#include "verify/replay.hpp"

using namespace ptecps;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv);

  campaign::ScenarioSpec spec;
  spec.name = "laser-tracheotomy/verify";
  spec.config = core::PatternConfig::laser_tracheotomy();
  spec.mode = campaign::RunMode::kVerify;
  spec.verify.max_losses = static_cast<std::size_t>(args.get_int("losses", 2));
  spec.verify.max_injections = static_cast<std::size_t>(args.get_int("injections", 2));

  std::printf("=== 1. proving the paper's configuration ===\n");
  campaign::CampaignOptions options;
  options.threads = 1;
  const campaign::CampaignReport report = campaign::CampaignRunner(options).run(spec);
  const campaign::VerificationOutcome& proof = *report.scenarios[0].verification;
  std::printf("status: %s (%zu states explored, %.3f s)\n\n",
              verify::verify_status_str(proof.status).c_str(), proof.states_explored,
              proof.wall_seconds);

  std::printf("=== 2. a deliberately broken variant ===\n");
  campaign::ScenarioSpec broken = spec;
  broken.name = "laser-tracheotomy/dwell-ceiling-30s";
  broken.dwell_bound = 30.0;  // the ventilator's worst case is 41 s
  broken.verify.max_losses = 1;
  const campaign::CampaignReport broken_report =
      campaign::CampaignRunner(options).run(broken);
  const campaign::VerificationOutcome& cx_outcome = *broken_report.scenarios[0].verification;
  if (!cx_outcome.counterexample.has_value()) {
    std::printf("expected a counterexample, got %s\n",
                verify::verify_status_str(cx_outcome.status).c_str());
    return 1;
  }
  std::printf("%s\n", cx_outcome.counterexample->str().c_str());
  std::printf("replayed through hybrid::Engine + PteMonitor: %s\n",
              cx_outcome.replay_reproduced ? "violation reproduced" : "NOT reproduced");

  const bool ok = proof.status == verify::VerifyStatus::kProved &&
                  cx_outcome.replay_reproduced;
  std::printf("\n%s\n", ok ? "demo passed." : "demo FAILED.");
  return ok ? 0 : 1;
}
