// The paper's §V case study, end to end: wireless laser tracheotomy with
// a simulated patient, surgeon, oximeter, and a WiFi interferer — printed
// as a narrated session timeline plus trial statistics.
//
// Run:  ./laser_tracheotomy [--duration 1800] [--seed 1] [--no-lease]
//       [--toff 18]
#include <cstdio>

#include "casestudy/trial.hpp"
#include "hybrid/trace.hpp"
#include "util/cli.hpp"
#include "util/text.hpp"

using namespace ptecps;

int main(int argc, char** argv) {
  util::ArgParser args(argc, argv, {"duration", "no-lease", "seed", "toff"});
  casestudy::TrialOptions opt;
  opt.duration = args.get_double("duration", 1800.0);
  opt.seed = args.get_u64("seed", 1);
  opt.with_lease = !args.has_flag("no-lease");
  opt.surgeon.mean_toff = args.get_double("toff", 18.0);
  opt.record_trace = true;

  std::printf("=== Wireless laser tracheotomy (paper §V) ===\n");
  std::printf("mode: %s lease, %.0f s, E(Ton)=%.0f s, E(Toff)=%.0f s, seed %llu\n\n",
              opt.with_lease ? "WITH" : "WITHOUT", opt.duration, opt.surgeon.mean_ton,
              opt.surgeon.mean_toff, static_cast<unsigned long long>(opt.seed));
  std::printf("configuration:\n%s\n", opt.config.describe().c_str());

  casestudy::LaserTracheotomySystem sys(std::move(opt));
  sys.run(sys.options().duration);
  casestudy::TrialResult r = sys.result();

  // Narrate the first session from the trace.
  std::printf("--- first ~90 s of the execution trace ---\n");
  std::vector<const hybrid::Automaton*> automata;
  for (std::size_t i = 0; i < sys.engine().num_automata(); ++i)
    automata.push_back(&sys.engine().automaton(i));
  std::string transcript;
  for (const auto& record : sys.engine().trace().records()) {
    if (record.t > 90.0) break;
    if (record.kind != hybrid::TraceKind::kTransition) continue;
    transcript += util::cat("  [t=", util::fmt_double(record.t, 2), "s] ",
                            automata[record.automaton]->name(), ": ",
                            record.from != hybrid::kNoLoc
                                ? automata[record.automaton]->location(record.from).name
                                : "(start)",
                            " -> ", automata[record.automaton]->location(record.to).name,
                            "  (", record.detail, ")\n");
  }
  std::printf("%s\n", transcript.c_str());

  std::printf("--- trial result ---\n  %s\n\n", r.summary().c_str());
  std::printf("--- PTE monitor ---\n%s\n", sys.monitor().summary().c_str());
  std::printf("--- wireless links ---\n%s\n", sys.network().describe().c_str());
  if (!r.violations.empty()) {
    std::printf("--- violations ---\n");
    for (const auto& v : r.violations)
      std::printf("  [t=%.2f] %s: %s\n", v.t, core::violation_kind_str(v.kind).c_str(),
                  v.description.c_str());
  }
  return 0;
}
